#include "src/core/engine.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/common/hash.h"
#include "src/common/logging.h"

namespace prefillonly {

Engine::Engine(EngineOptions options)
    : options_(std::move(options)),
      profile_activations_(options_.activation_budget_bytes),
      epoch_(std::chrono::steady_clock::now()) {
  assert(options_.model.Valid());
  options_.max_concurrent_requests = std::max(options_.max_concurrent_requests, 1);
  pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  model_ = std::make_unique<LlamaModel>(options_.model, options_.weight_seed,
                                        options_.kernel_backend);
  model_->SetThreadPool(pool_.get());
  const int64_t pool_blocks =
      options_.cache_budget_tokens / std::max(options_.block_size, 1);
  cache_ = std::make_unique<PrefixCache>(options_.block_size, pool_blocks);
  store_ = std::make_unique<KvBlockStore>(options_.model, options_.block_size,
                                          cache_memory_);
  offload_dir_ = std::make_unique<OffloadDirectory>(
      options_.cpu_offload_budget_tokens / std::max(options_.block_size, 1));
  // The listener fires from cache_ operations, which the engine only invokes
  // with cache_mu_ held — it may touch every cache-tier member.
  cache_->SetEvictionListener([this](uint64_t hash, BlockId block, int64_t depth) {
    if (offload_dir_->capacity_blocks() <= 0) {
      store_->Drop(block);
      return;
    }
    // Demote instead of discard (§9): copy the payload to the CPU tier.
    KvBlock payload = store_->Take(block);
    if (payload.empty()) {
      return;
    }
    offload_payloads_[hash] = CloneBlock(payload, offload_memory_);
    ++offload_demotions_;
    const uint64_t displaced = offload_dir_->Insert(hash, depth);
    if (displaced != 0) {
      offload_payloads_.erase(displaced);
    }
  });
  estimator_ = std::make_unique<CacheMissProxyEstimator>();
  scheduler_ =
      std::make_unique<Scheduler>(options_.policy, options_.lambda, estimator_.get());
}

Engine::~Engine() { StopWorker(); }

double Engine::NowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
}

Status Engine::Validate(const ScoringRequest& request) const {
  if (request.tokens.empty()) {
    return Status::InvalidArgument("request has no tokens");
  }
  if (static_cast<int64_t>(request.tokens.size()) > options_.max_input_length) {
    return Status::OutOfRange("request exceeds the maximum input length");
  }
  if (request.allowed_tokens.empty()) {
    return Status::InvalidArgument("allowed token list is empty");
  }
  for (int32_t t : request.tokens) {
    if (t < 0 || t >= options_.model.vocab_size) {
      return Status::InvalidArgument("token id out of vocabulary range");
    }
  }
  for (int32_t t : request.allowed_tokens) {
    if (t < 0 || t >= options_.model.vocab_size) {
      return Status::InvalidArgument("allowed token out of vocabulary range");
    }
  }
  return Status::Ok();
}

Result<int64_t> Engine::Enqueue(
    ScoringRequest request,
    std::shared_ptr<std::promise<Result<ScoringResponse>>> promise) {
  if (Status s = Validate(request); !s.ok()) {
    return s;
  }
  Pending pending;
  pending.request = std::move(request);
  pending.arrival_s = NowSeconds();
  pending.chain = std::make_shared<const std::vector<uint64_t>>(
      BlockHashChain(pending.request.tokens, options_.block_size));
  pending.promise = std::move(promise);

  std::lock_guard<std::mutex> lock(mu_);
  if (draining_) {
    return Status::FailedPrecondition("engine is stopping; request rejected");
  }
  pending.id = next_id_++;
  ++stats_.submitted;
  const int64_t id = pending.id;
  waiting_.push_back(std::move(pending));
  dispatch_cv_.notify_all();
  return id;
}

Result<int64_t> Engine::Submit(ScoringRequest request) {
  return Enqueue(std::move(request), nullptr);
}

Result<Engine::ResponseFuture> Engine::SubmitAsync(ScoringRequest request) {
  auto promise = std::make_shared<std::promise<Result<ScoringResponse>>>();
  ResponseFuture future = promise->get_future();
  auto id = Enqueue(std::move(request), std::move(promise));
  if (!id.ok()) {
    return id.status();
  }
  return future;
}

std::vector<Engine::Candidate> Engine::SnapshotQueueLocked() const {
  std::vector<Candidate> candidates;
  candidates.reserve(waiting_.size());
  for (const Pending& p : waiting_) {
    Candidate c;
    c.id = p.id;
    c.arrival_s = p.arrival_s;
    c.n_input = static_cast<int64_t>(p.request.tokens.size());
    c.chain = p.chain;
    candidates.push_back(std::move(c));
  }
  return candidates;
}

int64_t Engine::PickCandidate(const std::vector<Candidate>& candidates,
                              const Scheduler* scheduler) const {
  assert(!candidates.empty());
  std::vector<SchedEntry> entries;
  entries.reserve(candidates.size());
  const bool calibrate = options_.policy == SchedPolicy::kSrjfCalibrated;
  {
    std::lock_guard<std::mutex> cache_lock(cache_mu_);
    for (const Candidate& c : candidates) {
      SchedEntry entry;
      entry.arrival_time = c.arrival_s;
      entry.n_input = c.n_input;
      // Continuous JCT calibration: the hit length is refreshed against the
      // live cache on every decision. Offloaded blocks count as cached:
      // their reload is far cheaper than recomputation.
      const int64_t gpu_match = cache_->MatchTokens(*c.chain);
      const int64_t offload_match =
          offload_dir_->PeekContinuation(*c.chain, gpu_match / options_.block_size) *
          options_.block_size;
      const int64_t match = std::min(gpu_match + offload_match, entry.n_input - 1);
      entry.n_cached_at_arrival = match;  // static policies are approximated
      entry.n_cached_now = calibrate ? match : entry.n_cached_at_arrival;
      entries.push_back(entry);
    }
  }
  return candidates[scheduler->PickNext(entries, NowSeconds())].id;
}

std::optional<Engine::Pending> Engine::TakeWaitingLocked(int64_t id) {
  for (auto it = waiting_.begin(); it != waiting_.end(); ++it) {
    if (it->id == id) {
      Pending pending = std::move(*it);
      waiting_.erase(it);
      return pending;
    }
  }
  return std::nullopt;
}

Result<ScoringResponse> Engine::Execute(Pending pending) {
  // Per-request activation arena (ISSUE 2): concurrent requests never share
  // an allocator, so tracking stays exact per lane and the budget is the
  // per-request GPU-memory analogue. Every tensor allocated below dies
  // before the arena does (end of ExecuteOnArena).
  TrackingAllocator activations(options_.activation_budget_bytes);
  auto response = ExecuteOnArena(activations, std::move(pending));
  std::lock_guard<std::mutex> lock(mu_);
  stats_.peak_activation_bytes =
      std::max(stats_.peak_activation_bytes, activations.peak_bytes());
  return response;
}

Result<ScoringResponse> Engine::ExecuteOnArena(TrackingAllocator& activations,
                                               Pending pending) {
  const auto& tokens = pending.request.tokens;
  const auto n_tokens = static_cast<int64_t>(tokens.size());
  const double start_s = NowSeconds();

  // Suffix KV cache discarding, decided up front: only the prefix that fits
  // the cache budget is ever granted blocks.
  const int64_t budget_blocks =
      std::min<int64_t>(static_cast<int64_t>(pending.chain->size()),
                        cache_->capacity_blocks());
  std::span<const uint64_t> chain(*pending.chain);
  chain = chain.subspan(0, static_cast<size_t>(budget_blocks));

  // --- Cache acquire + prefix assembly, atomic under cache_mu_ ---------
  Acquisition acq;
  int64_t prefix_blocks = 0;
  int64_t gpu_prefix_blocks = 0;
  int64_t n_cached = 0;
  KvCacheData prefix;
  {
    std::lock_guard<std::mutex> cache_lock(cache_mu_);
    auto acquired = cache_->Acquire(chain, budget_blocks);
    if (!acquired.ok()) {
      return acquired.status();
    }
    acq = acquired.take();

    // Block-aligned prefix reuse; the final token is always recomputed. The
    // GPU-tier match may continue into the offload tier (§9).
    const int64_t gpu_matched = acq.matched_blocks;
    const int64_t offload_matched = offload_dir_->MatchContinuation(chain, gpu_matched);
    const int64_t max_prefix_blocks = (n_tokens - 1) / options_.block_size;
    prefix_blocks = std::min(gpu_matched + offload_matched, max_prefix_blocks);
    gpu_prefix_blocks = std::min(gpu_matched, prefix_blocks);
    n_cached = prefix_blocks * options_.block_size;

    if (prefix_blocks > 0) {
      // GPU-resident blocks first, then offloaded payloads "reloaded" into
      // the contiguous prefix (the copy is the simulated H2D transfer).
      // Matched blocks are pinned (refcounted), so the payloads cannot be
      // evicted while we copy; the copies happen under cache_mu_ so the
      // offload tier cannot mutate between the match above and the reads.
      prefix.n_tokens = n_cached;
      prefix.layers.resize(static_cast<size_t>(options_.model.n_layers));
      for (auto& layer : prefix.layers) {
        layer.k = Tensor::Uninit(activations, {n_cached, options_.model.kv_size()},
                                 "kvstore.prefix.k");
        layer.v = Tensor::Uninit(activations, {n_cached, options_.model.kv_size()},
                                 "kvstore.prefix.v");
      }
      if (gpu_prefix_blocks > 0) {
        const KvCacheData gpu_part =
            store_->AssemblePrefix(acq.blocks, gpu_prefix_blocks);
        for (size_t l = 0; l < prefix.layers.size(); ++l) {
          std::memcpy(prefix.layers[l].k.data(), gpu_part.layers[l].k.data(),
                      gpu_part.layers[l].k.bytes());
          std::memcpy(prefix.layers[l].v.data(), gpu_part.layers[l].v.data(),
                      gpu_part.layers[l].v.bytes());
        }
      }
      for (int64_t b = gpu_prefix_blocks; b < prefix_blocks; ++b) {
        auto payload = offload_payloads_.find(chain[static_cast<size_t>(b)]);
        assert(payload != offload_payloads_.end());
        CopyBlockInto(payload->second, prefix, b, options_.block_size);
        offload_hit_tokens_ += options_.block_size;
      }
    }
  }

  PrefillOptions prefill;
  prefill.mode = options_.mode;
  prefill.chunk_size = options_.chunk_size;
  prefill.preallocate_outputs = options_.preallocate_outputs;
  prefill.in_place = options_.in_place;
  prefill.retention = KvRetention::kPrefixBudget;
  prefill.prefix_budget_tokens = budget_blocks * options_.block_size;

  // The prefill pass runs without any engine lock: the model is immutable,
  // the prefix is a private copy, and intra-op workers come from this
  // thread's elastic ThreadPool partition.
  auto result = model_->Prefill(tokens, prefix.empty() ? nullptr : &prefix, prefill,
                                activations);
  if (!result.ok()) {
    std::lock_guard<std::mutex> cache_lock(cache_mu_);
    cache_->Release(acq, 0);
    return result.status();
  }
  PrefillResult& pass = result.value();

  // --- Cache release + KV publication, atomic under cache_mu_ ----------
  // Hand the retained fresh prefix blocks to the cache + payload store.
  // Blocks served from the offload tier are PROMOTED: their payload moves
  // back to the GPU tier instead of being recomputed or duplicated.
  {
    std::lock_guard<std::mutex> cache_lock(cache_mu_);
    const auto inserted = cache_->Release(acq, budget_blocks);
    for (const auto& [block_index, block_id] : inserted) {
      const uint64_t hash = chain[static_cast<size_t>(block_index)];
      if (block_index < prefix_blocks) {
        auto payload = offload_payloads_.find(hash);
        if (payload != offload_payloads_.end()) {
          store_->PutBlock(block_id, CloneBlock(payload->second, cache_memory_));
          offload_payloads_.erase(payload);
          offload_dir_->Erase(hash);
          ++offload_promotions_;
        } else {
          // A concurrent request promoted (and possibly re-evicted) this
          // offload payload between our acquire and release. The rows are
          // still at hand in the assembled prefix — publish from there;
          // pass.kv starts at n_cached and cannot serve this block.
          store_->Put(block_id, prefix, /*source_start=*/0, block_index);
        }
      } else {
        store_->Put(block_id, pass.kv, pass.kv_start, block_index);
      }
    }
  }

  auto probabilities =
      ConstrainedProbabilities(pass.last_logits, pending.request.allowed_tokens);
  if (!probabilities.ok()) {
    return probabilities.status();
  }

  ScoringResponse response;
  response.request_id = pending.id;
  response.user_id = pending.request.user_id;
  response.probabilities = probabilities.take();
  response.score = response.probabilities[0].probability;
  response.n_input = n_tokens;
  response.n_cached = n_cached;
  response.n_cached_offload =
      (prefix_blocks - gpu_prefix_blocks) * options_.block_size;
  response.queue_time_s = start_s - pending.arrival_s;
  response.execute_time_s = NowSeconds() - start_s;
  return response;
}

Result<ScoringResponse> Engine::ExecuteAndFinalize(Pending pending) {
  auto promise = std::move(pending.promise);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++executing_;
    stats_.peak_in_flight =
        std::max<int64_t>(stats_.peak_in_flight, executing_);
  }
  auto response = Execute(std::move(pending));
  {
    std::lock_guard<std::mutex> lock(mu_);
    --executing_;
    if (response.ok()) {
      ++stats_.completed;
      stats_.total_execute_s += response.value().execute_time_s;
    } else {
      ++stats_.failed;
    }
  }
  if (promise != nullptr) {
    promise->set_value(response);
  }
  return response;
}

Result<std::vector<ScoringResponse>> Engine::RunPending() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (runtime_running_) {
      // Checked misuse (ISSUE 2): while the concurrent runtime owns the
      // queue, a second scheduling loop would double-dispatch requests.
      // Checked once, on entry: results of requests already executed are
      // never thrown away mid-drain.
      return Status::FailedPrecondition(
          "RunPending() while the concurrent runtime is active; "
          "use SubmitAsync()/StopWorker() instead");
    }
    if (profiling_) {
      return Status::FailedPrecondition(
          "RunPending() while ProfileJct() is in progress; retry after it returns");
    }
  }
  std::vector<ScoringResponse> responses;
  while (true) {
    std::vector<Candidate> candidates;
    const Scheduler* scheduler = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (waiting_.empty()) {
        break;
      }
      candidates = SnapshotQueueLocked();
      scheduler = scheduler_.get();
    }
    const int64_t picked = PickCandidate(candidates, scheduler);
    std::optional<Pending> pending;
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending = TakeWaitingLocked(picked);
    }
    if (!pending.has_value()) {
      // A StartWorker() racing mid-drain handed this request to the
      // dispatcher; it completes there, we just stop claiming it.
      continue;
    }
    auto response = ExecuteAndFinalize(std::move(*pending));
    if (response.ok()) {
      responses.push_back(response.take());
    } else {
      PO_LOG_WARNING << "request failed: " << response.status().ToString();
    }
  }
  return responses;
}

Result<ScoringResponse> Engine::ScoreSync(ScoringRequest request) {
  if (Status s = Validate(request); !s.ok()) {
    return s;
  }
  Pending pending;
  pending.request = std::move(request);
  pending.arrival_s = NowSeconds();
  pending.chain = std::make_shared<const std::vector<uint64_t>>(
      BlockHashChain(pending.request.tokens, options_.block_size));
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending.id = next_id_++;
    ++stats_.submitted;
  }
  return ExecuteAndFinalize(std::move(pending));
}

Status Engine::StartWorker(ResponseCallback callback) {
  std::lock_guard<std::mutex> lock(mu_);
  if (runtime_running_) {
    return Status::FailedPrecondition("concurrent runtime is already running");
  }
  if (profiling_) {
    return Status::FailedPrecondition(
        "ProfileJct() is in progress; start the runtime after it returns");
  }
  runtime_running_ = true;
  draining_ = false;
  exec_queue_ = std::make_unique<BlockingQueue<Pending>>();
  executors_.clear();
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
  for (int i = 0; i < options_.max_concurrent_requests; ++i) {
    executors_.emplace_back(
        [this, callback]() mutable { ExecutorLoop(std::move(callback)); });
  }
  return Status::Ok();
}

bool Engine::worker_running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return runtime_running_;
}

void Engine::StopWorker() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!runtime_running_) {
    return;
  }
  if (draining_) {
    // Another thread is already stopping; wait for it to finish so the
    // post-condition (runtime fully joined) holds for every caller.
    dispatch_cv_.wait(lock, [this] { return !runtime_running_; });
    return;
  }
  draining_ = true;
  lock.unlock();
  dispatch_cv_.notify_all();
  dispatcher_.join();
  for (std::thread& executor : executors_) {
    executor.join();
  }
  lock.lock();
  executors_.clear();
  runtime_running_ = false;
  draining_ = false;
  lock.unlock();
  dispatch_cv_.notify_all();
}

void Engine::DispatcherLoop() {
  const int max_slots = options_.max_concurrent_requests;
  // Guaranteed floor share per in-flight request; elastic growth beyond it
  // comes from ParallelFor borrowing idle workers (ThreadPool::Lease).
  const int reserve_workers = std::max(1, pool_->num_threads() / max_slots) - 1;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    dispatch_cv_.wait(lock, [&] {
      return (draining_ && waiting_.empty() && in_flight_ == 0) ||
             (!waiting_.empty() && in_flight_ < max_slots);
    });
    if (waiting_.empty() || in_flight_ >= max_slots) {
      if (draining_ && waiting_.empty() && in_flight_ == 0) {
        break;
      }
      continue;
    }
    // The scheduling decision: snapshot the queue, then consult cache +
    // scheduler with mu_ RELEASED, so Submit/stats never convoy behind an
    // in-flight prefix copy holding cache_mu_. n_cached_now is refreshed
    // against the live cache at the moment an executor slot frees —
    // continuous JCT calibration (§6.3). Only this thread removes entries
    // while the runtime runs, so the pick is still in waiting_ on relock
    // (requests that arrive between snapshot and relock just wait for the
    // next decision).
    std::vector<Candidate> candidates = SnapshotQueueLocked();
    const Scheduler* scheduler = scheduler_.get();
    lock.unlock();
    const int64_t picked = PickCandidate(candidates, scheduler);
    lock.lock();
    std::optional<Pending> pending = TakeWaitingLocked(picked);
    if (!pending.has_value()) {
      continue;
    }
    ++in_flight_;
    pending->reserve_workers = reserve_workers;
    lock.unlock();
    exec_queue_->Push(std::move(*pending));
    lock.lock();
  }
  lock.unlock();
  exec_queue_->Close();
}

void Engine::ExecutorLoop(ResponseCallback callback) {
  while (auto item = exec_queue_->Pop()) {
    Pending pending = std::move(*item);
    const int reserve = pending.reserve_workers;
    Result<ScoringResponse> response = [&] {
      // The lease is this request's worker partition: `reserve` workers held
      // exclusively for the whole execution, plus per-kernel borrowing of
      // whatever is idle. Destroyed (workers returned) before completion is
      // announced, so a waiting dispatchee can inherit them immediately.
      ThreadPool::Lease lease(*pool_, reserve);
      return ExecuteAndFinalize(std::move(pending));
    }();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    dispatch_cv_.notify_all();
    if (callback) {
      callback(std::move(response));
    }
  }
}

Result<double> Engine::ProfileJct(int64_t max_input_len, int64_t granularity) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (runtime_running_ || profiling_) {
      // The estimator/scheduler swap below would race with in-flight
      // scheduling decisions (and profiling wants the machine to itself).
      // profiling_ stays set until the swap is done; StartWorker and
      // RunPending refuse to begin while it is.
      return Status::FailedPrecondition(
          "ProfileJct() while the concurrent runtime is active; "
          "profile before StartWorker()");
    }
    profiling_ = true;
  }
  // Time real prefill passes; a zero-filled fake prefix of n_cached tokens
  // reproduces the exact computation shape of a cache hit.
  auto measure = [&](int64_t n_input, int64_t n_cached) -> double {
    std::vector<int32_t> tokens(static_cast<size_t>(n_input), 1);
    KvCacheData prefix;
    if (n_cached > 0) {
      prefix.n_tokens = n_cached;
      prefix.layers.resize(static_cast<size_t>(options_.model.n_layers));
      for (auto& layer : prefix.layers) {
        layer.k = Tensor::Zeros(profile_activations_,
                                {n_cached, options_.model.kv_size()}, "profile.k");
        layer.v = Tensor::Zeros(profile_activations_,
                                {n_cached, options_.model.kv_size()}, "profile.v");
      }
    }
    PrefillOptions prefill;
    prefill.mode = options_.mode;
    prefill.chunk_size = options_.chunk_size;
    const double t0 = NowSeconds();
    auto result = model_->Prefill(tokens, n_cached > 0 ? &prefix : nullptr, prefill,
                                  profile_activations_);
    (void)result;
    return NowSeconds() - t0;
  };
  auto profiled = ProfiledJctEstimator::Profile(measure, max_input_len, granularity);
  std::lock_guard<std::mutex> lock(mu_);
  profiling_ = false;
  if (!profiled.ok()) {
    return profiled.status();
  }
  const double r2 = profiled.value().r_squared();
  estimator_ = std::make_unique<ProfiledJctEstimator>(profiled.take());
  scheduler_ = std::make_unique<Scheduler>(options_.policy, options_.lambda,
                                           estimator_.get());
  return r2;
}

EngineStats Engine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  EngineStats out = stats_;
  out.peak_activation_bytes =
      std::max(out.peak_activation_bytes, profile_activations_.peak_bytes());
  std::lock_guard<std::mutex> cache_lock(cache_mu_);
  out.cache_bytes = cache_memory_.current_bytes();
  out.cache = cache_->stats();
  out.offload_bytes = offload_memory_.current_bytes();
  out.offload_hit_tokens = offload_hit_tokens_;
  out.offload_demotions = offload_demotions_;
  out.offload_promotions = offload_promotions_;
  return out;
}

}  // namespace prefillonly
