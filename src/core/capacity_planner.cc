#include "src/core/capacity_planner.h"

#include <algorithm>

#include "src/gpu/memory_model.h"

namespace prefillonly {

namespace {

const EngineKind kCandidates[] = {
    EngineKind::kPagedAttention, EngineKind::kChunkedPrefill,
    EngineKind::kPipelineParallel, EngineKind::kTensorParallel,
    EngineKind::kPrefillOnly,
};

}  // namespace

CapacityPlan PlanCapacity(const HardwareSetup& hardware, const Dataset& dataset,
                          double probe_qps) {
  CapacityPlan plan;
  const int64_t workload_max = dataset.MaxTokens();

  double best_throughput = 0.0;
  for (EngineKind kind : kCandidates) {
    EngineAssessment assessment;
    assessment.kind = kind;
    EngineConfig config = EngineConfig::Make(kind, hardware);
    MemoryModel memory(hardware.llm, hardware.gpu, config.memory);
    assessment.max_input_length = memory.MaxInputLength(kind);
    assessment.fits_workload = assessment.max_input_length >= workload_max;
    if (assessment.fits_workload) {
      assessment.saturated_throughput = MeasureSaturatedThroughput(config, dataset);
      best_throughput = std::max(best_throughput, assessment.saturated_throughput);
    }
    plan.assessments.push_back(assessment);
  }

  const double qps = probe_qps > 0.0 ? probe_qps : std::max(best_throughput / 2.0, 1e-6);
  for (auto& assessment : plan.assessments) {
    if (!assessment.fits_workload) {
      continue;
    }
    Dataset probe = dataset;
    AssignUserBurstArrivals(probe, qps, /*seed=*/7);
    EngineConfig config = EngineConfig::Make(assessment.kind, hardware);
    const ClusterResult result = RunCluster(config, probe);
    assessment.mean_latency_s = result.mean_latency_s;
    assessment.p99_latency_s = result.p99_latency_s;
    assessment.cache_hit_rate = result.cache_hit_rate;
  }

  // Recommend the feasible engine with the highest saturated throughput;
  // break ties toward lower mean latency.
  plan.recommended = EngineKind::kPrefillOnly;
  double best_score = -1.0;
  for (const auto& assessment : plan.assessments) {
    if (!assessment.fits_workload) {
      continue;
    }
    if (assessment.saturated_throughput > best_score) {
      best_score = assessment.saturated_throughput;
      plan.recommended = assessment.kind;
    }
  }
  plan.rationale = best_score < 0
                       ? "no engine can serve the workload's longest request"
                       : "highest saturated throughput among engines whose max input "
                         "length covers the workload";
  return plan;
}

}  // namespace prefillonly
