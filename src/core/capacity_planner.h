// Deployment advisor built on the analytic models.
//
// Answers the practical question the paper's evaluation answers
// empirically: for THIS hardware, model and workload, which engine should
// serve it, can it serve it at all (max input length vs. workload length),
// and what throughput/latency should be expected. Used by the
// capacity_planner example and by tests as an end-to-end consistency check
// of the memory model + cost model + simulator stack.
#ifndef SRC_CORE_CAPACITY_PLANNER_H_
#define SRC_CORE_CAPACITY_PLANNER_H_

#include <string>
#include <vector>

#include "src/engine/cluster.h"
#include "src/engine/engine_config.h"
#include "src/gpu/specs.h"
#include "src/workload/dataset.h"

namespace prefillonly {

struct EngineAssessment {
  EngineKind kind;
  int64_t max_input_length = 0;
  bool fits_workload = false;        // MIL >= workload max request
  double saturated_throughput = 0.0; // req/s with all requests at t=0
  double mean_latency_s = 0.0;       // at the probe QPS
  double p99_latency_s = 0.0;
  double cache_hit_rate = 0.0;
};

struct CapacityPlan {
  std::vector<EngineAssessment> assessments;  // one per engine kind
  EngineKind recommended;
  std::string rationale;
};

// Evaluates every engine kind on `hardware` against `dataset`, probing
// latency at `probe_qps` (0 = half the best engine's saturated throughput).
CapacityPlan PlanCapacity(const HardwareSetup& hardware, const Dataset& dataset,
                          double probe_qps = 0.0);

}  // namespace prefillonly

#endif  // SRC_CORE_CAPACITY_PLANNER_H_
