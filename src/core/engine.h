// The real PrefillOnly engine: the paper's system, runnable on CPU.
//
// Wires together everything below it:
//   * LlamaModel with HYBRID PREFILLING (§4) — attention unchunked, linear
//     layers chunk-by-chunk, with output preallocation and in-place reuse;
//   * SUFFIX KV CACHE DISCARDING (§5.1) — only the prefix that fits the
//     cache budget is retained, via KvRetention::kPrefixBudget;
//   * a block-granular PREFIX CACHE (§2.1): PrefixCache metadata plus
//     KvBlockStore tensor payloads, LRU-evicted under a token budget;
//   * SRJF scheduling with CONTINUOUS JCT CALIBRATION (§6.3, Algorithm 1):
//     before every scheduling decision the cache-hit length of each waiting
//     request is refreshed against the live cache, and a starvation offset
//     lambda * queueing-time keeps the tail bounded;
//   * CONTINUOUS BATCHING inside executor lanes (ISSUE 4, repacked in
//     ISSUE 9): each scheduling decision may hand a lane up to
//     EngineOptions::max_batch_size requests packed first-fit decreasing
//     over remaining (miss) lengths against the lane's activation budget
//     (Scheduler::PickBatch + BatchBudget), prefilled as ONE stacked pass
//     with block-diagonal attention (LlamaModel::PrefillBatch). The SRJF
//     winner always seeds the batch, so scheduling semantics are unchanged,
//     and each request's logits are bitwise identical to solo execution;
//   * constrained sampling (§2.3): probabilities over the caller's allowed
//     token list, from a single prefill pass.
//
// Two frontends:
//   * synchronous: Submit(...) then RunPending() — deterministic, used by
//     tests and benchmarks; rejected with kFailedPrecondition while the
//     concurrent runtime is active;
//   * concurrent (ISSUE 2): StartWorker() spawns a dispatcher plus
//     EngineOptions::max_concurrent_requests executor threads. The SRJF
//     scheduler picks the next request under the dispatch lock whenever an
//     executor slot frees, and each in-flight request runs on an elastic
//     partition of the ThreadPool workers (ThreadPool::Lease). Responses are
//     delivered through the optional callback and/or the std::future returned
//     by SubmitAsync. ScoreSync remains valid while the runtime is active —
//     it executes inline on the calling thread as one more concurrent lane.
//
// Determinism contract: a request's logits are bitwise identical whether it
// ran on 1, 4, or all workers, alone or alongside other requests
// (tests/concurrency_test.cc). Lock hierarchy (docs/CONCURRENCY.md):
// mu_ (dispatch/stats) may be taken before cache_mu_ (cache tiers), never
// the reverse; neither is held across a model prefill.
#ifndef SRC_CORE_ENGINE_H_
#define SRC_CORE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/queue.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/core/kv_block_store.h"
#include "src/core/request.h"
#include "src/kvcache/offload_directory.h"
#include "src/kvcache/prefix_cache.h"
#include "src/model/llama.h"
#include "src/sched/jct.h"
#include "src/sched/scheduler.h"

namespace prefillonly {

struct EngineOptions {
  ModelConfig model = ModelConfig::Small();
  uint64_t weight_seed = 42;

  // Execution strategy. kHybrid is the paper's engine; kStandard/kChunked
  // turn the same engine into the baselines for A/B comparisons.
  PrefillMode mode = PrefillMode::kHybrid;
  int64_t chunk_size = 64;
  bool preallocate_outputs = true;
  bool in_place = true;

  // Intra-op parallelism: CPU threads used by every kernel of the forward
  // pass (ISSUE 1). 0 = hardware_concurrency; 1 = exact legacy serial
  // execution (no pool machinery at all). Logits are bitwise identical for
  // every value — work is partitioned so each output element is owned by
  // exactly one thread with a fixed accumulation order. The activation
  // budget is thread-count-independent: attention's extra per-thread score
  // rows are untracked host scratch, so the tracked footprint (and the
  // activation walker's predictions) match the serial seed exactly.
  int num_threads = 0;

  // Kernel backend for the tensor layer (ISSUE 3), plumbed to the model
  // like num_threads. kAuto resolves the PREFILLONLY_KERNEL_BACKEND env
  // var ("auto" / "scalar" / "avx2"), then picks the best backend the host
  // supports; forcing kAvx2 on a pre-AVX2 host falls back to scalar with a
  // warning. WITHIN a backend logits keep the full determinism contract
  // (bitwise identical across thread counts, prefill modes, partition
  // widths, solo-vs-concurrent); ACROSS backends parity is tolerance-based
  // (docs/PERFORMANCE.md "Kernel backends").
  KernelBackend kernel_backend = KernelBackend::kAuto;

  // Cross-request parallelism (ISSUE 2): how many requests the concurrent
  // runtime (StartWorker) executes simultaneously. 1 reproduces the legacy
  // single-executor behavior; N > 1 gives each in-flight request a reserved
  // ~num_threads/N worker share plus elastic borrowing of idle workers.
  // Logits do not depend on this value.
  int max_concurrent_requests = 1;

  // Continuous batching inside one executor lane (ISSUE 4): up to this many
  // queued requests that fit the lane's activation budget are stacked into
  // ONE batched prefill when a lane frees. 1 = exact legacy behavior (every
  // request prefills solo). The batch seed is always the scheduler's
  // PickNext winner, so SRJF aging semantics are unchanged. Logits do not
  // depend on this value: a request's bits are identical solo, concurrent,
  // or batched at any batch composition (tests/batching_test.cc).
  int max_batch_size = 1;

  // How the scheduler fills the remaining batch slots behind the seed
  // (ISSUE 9). kFirstFit (default) packs any-length riders first-fit
  // decreasing over remaining (miss) tokens against the activation budget —
  // the Prepacking policy; mixed-length batches stay bitwise identical to
  // solo because block-diagonal attention slices rows per sequence.
  // kBucket restores the legacy ISSUE 4 same-LengthBucket gate, kept for
  // bisection and A/B latency comparisons.
  BatchPacking batch_packing = BatchPacking::kFirstFit;

  // Activation budget in bytes (0 = unlimited), applied PER LANE: each
  // in-flight execution tracks its own activation arena, and a prefill
  // batch (max_batch_size > 1) shares its lane's single arena — so size
  // the budget for the stacked footprint you want to allow, not for one
  // request. Batch admission projects against this budget and an
  // overshooting stacked pass falls back to solo execution, so a budget
  // sized for exactly one request quietly turns batching off. Exceeding
  // it fails the request with kResourceExhausted — the CPU analogue of
  // GPU OOM.
  size_t activation_budget_bytes = 0;

  // Prefix-cache budget in tokens; KV beyond it is discarded (suffix KV
  // cache discarding). 0 disables caching entirely.
  int64_t cache_budget_tokens = 4096;
  // Second-tier budget (§9 "offloading the KV caches to CPU"): blocks
  // evicted from the primary cache are demoted here instead of discarded,
  // and reloaded on a later hit. 0 keeps the paper's default (discard).
  int64_t cpu_offload_budget_tokens = 0;
  int block_size = 32;

  int64_t max_input_length = 1 << 20;

  SchedPolicy policy = SchedPolicy::kSrjfCalibrated;
  // Starvation offset in estimator units per second (§6.3).
  double lambda = 500.0;

  // --- Robustness (ISSUE 6; docs/ROBUSTNESS.md) ------------------------
  // Bounded retry of TRANSIENT prefix/KV acquisition failures: when the
  // cache acquire fails with kResourceExhausted (block pool pinned by
  // batchmates, injected allocation failure), the request retries up to
  // this many times with exponential backoff (alloc_retry_backoff_ms << n)
  // before the failure is surfaced. A retry that would land past the
  // request deadline is not attempted. 0 disables (legacy behavior).
  int alloc_retry_max = 0;
  int64_t alloc_retry_backoff_ms = 1;

  // Watermark overload shedding with hysteresis: once the waiting queue
  // reaches shed_high_watermark, NEW submissions are rejected with
  // kResourceExhausted — the HTTP 429 + Retry-After path — until the queue
  // drains back to shed_low_watermark. Shed requests are never admitted
  // (they do not count as submitted; stats().shed counts them). 0 disables;
  // a high watermark with low <= 0 defaults low to high/2.
  int64_t shed_high_watermark = 0;
  int64_t shed_low_watermark = 0;

  // Executor watchdog: a dispatched request still unfinished this many ms
  // after leaving the queue has its promise failed with kInternal so async
  // clients are not left hanging behind a wedged lane. Delivery-level only:
  // the lane itself keeps running and terminal accounting is untouched, so
  // the balance invariant holds with or without stalls. 0 disables.
  int64_t watchdog_timeout_ms = 0;

  // Fault-injection schedule (src/common/fault.h grammar), installed into
  // the PROCESS-GLOBAL injector at engine construction. Empty leaves the
  // injector untouched (also settable via PREFILLONLY_FAULT_SCHEDULE); the
  // default build therefore runs bit-identical to a build without the
  // fault layer.
  std::string fault_schedule;
};

struct EngineStats {
  int64_t submitted = 0;
  int64_t completed = 0;
  int64_t failed = 0;
  // Request-lifecycle outcomes (ISSUE 5). `cancelled` counts requests
  // withdrawn while still queued — they never executed (no prefill, no
  // batch, no completed/failed increment). `cancelled_in_flight` counts
  // mark-and-ignore cancellations: the prefill had already started, its
  // result was discarded. `deadline_expired` counts requests failed with
  // kDeadlineExceeded before dispatch (lapsed while queued); submissions
  // with an already-expired deadline are rejected before counting as
  // submitted.
  int64_t cancelled = 0;
  int64_t cancelled_in_flight = 0;
  int64_t deadline_expired = 0;
  // Cooperative in-flight abort (ISSUE 6): requests whose deadline lapsed
  // BETWEEN prefill chunks — the pass stopped at the next boundary and the
  // remaining chunks were never executed. Disjoint from deadline_expired
  // (lapsed while still queued) and from failed.
  int64_t deadline_expired_in_flight = 0;
  // Chunk/member boundary polls that let an in-flight prefill continue; the
  // chaos tests compare this across runs to prove aborted requests actually
  // skipped work.
  int64_t abort_checks = 0;
  // Degradation ladder counters (docs/ROBUSTNESS.md).
  int64_t alloc_retries = 0;          // backoff retries of failed acquisitions
  int64_t alloc_retry_successes = 0;  // acquisitions that succeeded on retry
  int64_t shed = 0;                   // submissions rejected by overload shedding
  int64_t watchdog_stalls = 0;        // promises failed by the executor watchdog
  // Process-global fault-injector fires (0 unless a schedule is installed).
  int64_t faults_injected = 0;
  double total_execute_s = 0.0;
  // High-water mark of simultaneously executing lanes (concurrent runtime
  // plus inline ScoreSync lanes; a batch occupies one lane).
  int64_t peak_in_flight = 0;
  // Batch occupancy (ISSUE 4): prefill batches dispatched (size-1 batches
  // included) and the requests they carried; batched_requests /
  // batches_dispatched is the mean occupancy /v1/stats reports.
  int64_t batches_dispatched = 0;
  int64_t batched_requests = 0;
  int64_t peak_batch_size = 0;
  // Lane occupancy under packing (ISSUE 9): remaining (miss) tokens the
  // admission decisions stacked into dispatched batches —
  // batched_miss_tokens / batches_dispatched is the miss_tokens_per_batch
  // /v1/stats reports — and candidates passed over because admitting them
  // would have exceeded the activation budget (each skip leaves the
  // request queued for a later decision; the legacy code broke the whole
  // tail instead).
  int64_t batched_miss_tokens = 0;
  int64_t packing_skips = 0;
  size_t peak_activation_bytes = 0;
  size_t cache_bytes = 0;
  PrefixCacheStats cache;
  // Offload tier (zeros unless cpu_offload_budget_tokens > 0).
  size_t offload_bytes = 0;
  int64_t offload_hit_tokens = 0;
  int64_t offload_demotions = 0;   // GPU-tier evictions written to the tier
  int64_t offload_promotions = 0;  // reloads published back to the GPU tier
  int64_t offload_evictions = 0;   // directory LRU displacements (payload lost)
  int64_t offload_read_hits = 0;   // continuation lookups that found blocks
  int64_t offload_read_misses = 0;
};

class Engine {
 public:
  explicit Engine(EngineOptions options);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const EngineOptions& options() const { return options_; }
  const LlamaModel& model() const { return *model_; }

  using ResponseCallback = std::function<void(Result<ScoringResponse>)>;
  using ResponseFuture = std::future<Result<ScoringResponse>>;

  // --- Synchronous frontend -------------------------------------------
  // Validates and enqueues; returns the request id. Valid in both modes:
  // queued requests are drained by RunPending() or, when the runtime is
  // active, dispatched by the scheduler as executor slots free up.
  Result<int64_t> Submit(ScoringRequest request);
  // Schedules and executes everything queued; returns responses in
  // completion (i.e. scheduling) order. kFailedPrecondition while the
  // concurrent runtime is active — the dispatcher owns the queue then.
  Result<std::vector<ScoringResponse>> RunPending();
  // Convenience: submit one request and run it to completion on the calling
  // thread. Safe concurrently with the runtime and with other ScoreSync
  // calls (each lane has its own activation arena).
  Result<ScoringResponse> ScoreSync(ScoringRequest request);

  // --- Concurrent runtime (ISSUE 2) -----------------------------------
  // Starts the dispatcher and max_concurrent_requests executors. `callback`
  // (may be empty) is invoked on an executor thread for every completion.
  // kFailedPrecondition if already running.
  Status StartWorker(ResponseCallback callback);
  // Drains the queue and all in-flight requests, then joins the runtime.
  // Safe to call when not running (no-op) and from multiple threads.
  void StopWorker();
  bool worker_running() const;
  // Validates and enqueues like Submit, and additionally returns a future
  // fulfilled exactly once when the request completes (in either mode).
  Result<ResponseFuture> SubmitAsync(ScoringRequest request);

  // --- Request lifecycle (ISSUE 5) ------------------------------------
  // The engine id plus the future a lifecycle client polls/cancels with.
  struct AsyncSubmission {
    int64_t id = 0;
    ResponseFuture future;
  };
  // SubmitAsync, with the engine id exposed for Cancel()/Phase().
  Result<AsyncSubmission> SubmitAsyncHandle(ScoringRequest request);
  // Atomic multi-request admission: validates EVERY request up front (none
  // is enqueued unless all pass), then enqueues the whole group under one
  // lock so a scheduling decision sees all members together. Groups of
  // size >= 2 are tagged as deliberate co-batch candidates: PickBatch seeds
  // normally, then fills lanes with the seed's group-mates regardless of
  // their LengthBucket (the caller co-submitted them for one decision), so
  // multi-item API calls are co-scheduled deliberately instead of
  // probabilistically. Futures/ids are index-aligned with `requests`.
  // Per-item completion hook for group submissions (ISSUE 8). Invoked
  // exactly once per item, with the item's index in the submitted group and
  // its terminal result, from whichever thread finalizes the item (an
  // executor lane, the watchdog, Cancel(), or the dispatcher's deadline
  // sweep). Called with NO engine locks held, so the callback may call back
  // into this or another Engine — the ReplicaSet failover path relies on
  // exactly that. May fire before SubmitGroupAsync returns (the index, not
  // the engine id, identifies the item for this reason).
  using GroupCallback =
      std::function<void(size_t item_index, const Result<ScoringResponse>& result)>;
  Result<std::vector<AsyncSubmission>> SubmitGroupAsync(
      std::vector<ScoringRequest> requests, GroupCallback on_done = nullptr);
  // Cancels a request by engine id.
  //  * still queued  -> dequeued, never executes; its future/callback gets
  //    kCancelled and stats().cancelled increments (completed/failed and the
  //    batch counters never see it);
  //  * in flight     -> mark-and-ignore: the prefill finishes but its result
  //    is discarded; the future/callback gets kCancelled and
  //    stats().cancelled_in_flight increments;
  //  * unknown (completed or never existed) -> kNotFound.
  Status Cancel(int64_t id);
  // Cancel restricted to requests that have not left the queue (ISSUE 8):
  // the at-most-once half of replica failover. A still-queued request is
  // dequeued (counts as cancelled, its waiter sees kCancelled) and Ok is
  // returned — the caller may safely re-submit it elsewhere, because it
  // provably never executed here. A dispatched request returns
  // kFailedPrecondition and is NOT touched (no mark-and-ignore): its result
  // is already being computed and will be delivered normally. Unknown ids
  // return kNotFound.
  Status CancelIfQueued(int64_t id);
  // Where a request currently is, for lifecycle polling. kUnknown covers
  // "already finished" as well as "never submitted" — terminal results are
  // delivered through the future, not queryable here.
  enum class RequestPhase { kUnknown, kQueued, kRunning };
  RequestPhase Phase(int64_t id) const;

  // --- JCT profiling (§6.3) -------------------------------------------
  // Times real prefill passes over an (n_input, n_cached) grid and fits the
  // linear JCT model; on success the scheduler uses it instead of the
  // cache-miss-token proxy. Call before StartWorker: profiling wants the
  // machine to itself.
  Result<double> ProfileJct(int64_t max_input_len, int64_t granularity);

  // Coarse serving health (ISSUE 6), the /v1/health answer: kOverloaded
  // while shedding is active; kDegraded (sticky) once the watchdog has had
  // to fail a stuck request; kOk otherwise. Semantics in docs/ROBUSTNESS.md.
  enum class HealthStatus { kOk, kDegraded, kOverloaded };
  HealthStatus Health() const;

  EngineStats stats() const;
  // Seconds since engine construction (the queueing-time clock).
  double NowSeconds() const;

 private:
  struct Pending {
    int64_t id = 0;
    ScoringRequest request;
    double arrival_s = 0.0;
    // Absolute engine-clock deadline; < 0 = none (ISSUE 5).
    double deadline_s = -1.0;
    // Co-batch group id; 0 = ungrouped (ISSUE 5).
    int64_t group = 0;
    // Shared so scheduling snapshots can reference the chain without copying
    // it or holding mu_; immutable after construction.
    std::shared_ptr<const std::vector<uint64_t>> chain;
    // Engaged for SubmitAsync requests; fulfilled exactly once on completion.
    std::shared_ptr<std::promise<Result<ScoringResponse>>> promise;
    // Guards that exactly-once: the finalizer and the watchdog race for the
    // exchange, the loser's set_value is dropped (ISSUE 6).
    std::shared_ptr<std::atomic<bool>> fulfilled;
    // Per-item completion hook + the item's index in its submitted group
    // (ISSUE 8); delivered by Fulfill under the same exactly-once guard.
    std::shared_ptr<const GroupCallback> on_done;
    size_t on_done_index = 0;
  };

  // One dispatch decision (ISSUE 4): the requests an executor lane runs as
  // one stacked prefill. Size 1 takes the exact legacy solo path.
  struct PrefillBatchPending {
    std::vector<Pending> requests;
    // Reserved worker count for the executor's ThreadPool::Lease; set by the
    // dispatcher at admission time.
    int reserve_workers = 0;
  };

  // Immutable view of one waiting request, taken under mu_; the scheduling
  // decision itself (cache consultation) then runs WITHOUT mu_, so request
  // submission never convoys behind an in-flight prefix copy holding
  // cache_mu_.
  struct Candidate {
    int64_t id = 0;
    double arrival_s = 0.0;
    int64_t n_input = 0;
    int32_t priority = 0;
    int64_t group = 0;
    std::shared_ptr<const std::vector<uint64_t>> chain;
  };

  // Everything one request's prefill needs from the cache tiers, produced
  // atomically under cache_mu_ by AcquirePrefix and consumed lock-free by
  // the prefill, then released/published by PublishKv (shared between the
  // solo and batched execution paths).
  struct PrefixAcq {
    Acquisition acq;
    int64_t budget_blocks = 0;      // suffix-discarding budget, in blocks
    int64_t prefix_blocks = 0;      // reused prefix length, in blocks
    int64_t gpu_prefix_blocks = 0;  // subset resident in the primary tier
    int64_t n_cached = 0;           // prefix_blocks * block_size
    KvCacheData prefix;             // assembled contiguous prefix copy
    // Hash chain truncated to budget_blocks; backed by Pending::chain, so
    // the Pending must outlive this struct.
    std::span<const uint64_t> chain;
  };

  Status Validate(const ScoringRequest& request) const;
  // Validation + chain hashing + deadline conversion, everything that can
  // fail before admission; no locks taken.
  Result<Pending> MakePending(
      ScoringRequest request,
      std::shared_ptr<std::promise<Result<ScoringResponse>>> promise) const;
  // Admits fully-built Pendings under ONE mu_ acquisition (ids assigned,
  // submitted counted, dispatcher notified); groups therefore become
  // visible to the scheduler atomically. Returns the assigned ids.
  Result<std::vector<int64_t>> AdmitPendings(std::vector<Pending> pendings);
  Result<int64_t> Enqueue(ScoringRequest request,
                          std::shared_ptr<std::promise<Result<ScoringResponse>>> promise);
  // Removes every waiting request whose deadline has lapsed; requires mu_.
  // The caller fulfills their promises (kDeadlineExceeded) WITHOUT mu_.
  std::vector<Pending> TakeExpiredLocked(double now);
  // Cache acquire + prefix assembly, atomic under cache_mu_.
  Status AcquirePrefix(const Pending& pending, TrackingAllocator& activations,
                       PrefixAcq& out);
  // Cache release + KV publication, atomic under cache_mu_. `pass` may be
  // null: releases the acquisition retaining nothing (the failure path).
  void PublishKv(PrefixAcq& pa, const PrefillResult* pass);
  // Runs one request end to end on the calling thread: cache acquire under
  // cache_mu_, prefill with a per-request activation arena, cache release /
  // KV publication under cache_mu_. Never holds mu_.
  Result<ScoringResponse> Execute(Pending pending);
  Result<ScoringResponse> ExecuteOnArena(TrackingAllocator& activations,
                                         Pending pending);
  // Execute + stats/in-flight accounting + promise fulfillment.
  Result<ScoringResponse> ExecuteAndFinalize(Pending pending);
  // Runs one dispatched batch on the calling lane: size 1 delegates to the
  // exact legacy solo path; size >= 2 stacks the members into one
  // LlamaModel::PrefillBatch on a shared lane arena (per-request cache
  // acquire/publish around it). Failures fall back to solo execution on
  // this lane — per member when its acquisition fails (pool or arena
  // contention from batchmates), batch-wide when the stacked pass itself
  // fails (e.g. exceeding the lane's activation budget) — so co-batching
  // never fails a request that would have succeeded alone. Results are
  // index-aligned with `batch.requests`; promises are fulfilled here.
  std::vector<Result<ScoringResponse>> ExecuteBatchAndFinalize(
      PrefillBatchPending batch);
  std::vector<Result<ScoringResponse>> ExecuteBatchOnArena(
      TrackingAllocator& activations, std::vector<Pending>& pendings);
  // Snapshot of waiting_ for one scheduling decision; requires mu_.
  std::vector<Candidate> SnapshotQueueLocked() const;
  // One scheduling decision (ISSUE 9): the ids of up to max_batch_size
  // requests to run as one batch, seed first, plus the admission
  // accounting for the stats counters. The packing policy, activation
  // budget, and cost model all live in the scheduler (Scheduler::PickBatch
  // + BatchBudget); this method only refreshes n_cached_now against the
  // live cache under cache_mu_ and maps queue indices back to ids. Called
  // WITHOUT mu_.
  struct BatchDecision {
    std::vector<int64_t> ids;
    size_t projected_bytes = 0;
    int64_t miss_tokens = 0;
    int64_t budget_skips = 0;
  };
  BatchDecision PickBatchIds(const std::vector<Candidate>& candidates,
                             const Scheduler* scheduler) const;
  // Removes and returns the waiting request with `id`; nullopt if another
  // drain loop claimed it meanwhile. Requires mu_.
  std::optional<Pending> TakeWaitingLocked(int64_t id);
  void DispatcherLoop();
  void ExecutorLoop(ResponseCallback callback);

  // --- Robustness plumbing (ISSUE 6) -----------------------------------
  // Fulfills a promise (and fires the per-item completion hook, if any)
  // exactly once; the watchdog may have beaten us to it. Every caller holds
  // no engine locks — the hook may re-enter the engine.
  static void Fulfill(
      const std::shared_ptr<std::promise<Result<ScoringResponse>>>& promise,
      const std::shared_ptr<std::atomic<bool>>& fulfilled,
      const std::shared_ptr<const GroupCallback>& on_done, size_t on_done_index,
      Result<ScoringResponse> result);
  static void Fulfill(const Pending& pending, Result<ScoringResponse> result) {
    Fulfill(pending.promise, pending.fulfilled, pending.on_done,
            pending.on_done_index, std::move(result));
  }
  // Cooperative abort poll for one in-flight request: kDeadlineExceeded once
  // its deadline lapses, kCancelled once Cancel() marked it. Called between
  // prefill chunks (PrefillOptions::abort_check) and between batch members;
  // takes mu_ briefly, never cache_mu_.
  Status AbortStatus(const Pending& pending);
  // Registers `pending` in the running registry (Phase/Cancel/watchdog
  // visibility); keeps the earliest registration on re-entry. Requires mu_.
  void MarkRunningLocked(const Pending& pending);
  // Watermark hysteresis: flips shedding_ on/off from the current queue
  // depth. Called wherever waiting_ changes size. Requires mu_.
  void UpdateShedLocked();
  void WatchdogLoop();

  EngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // intra-op workers, shared by the model
  std::unique_ptr<LlamaModel> model_;
  TrackingAllocator profile_activations_;  // ProfileJct only; per-request
                                           // arenas live in Execute
  TrackingAllocator cache_memory_;
  TrackingAllocator offload_memory_;  // the "CPU side" of the offload tier

  // --- Cache tiers, guarded by cache_mu_ ------------------------------
  mutable std::mutex cache_mu_;
  std::unique_ptr<PrefixCache> cache_;
  std::unique_ptr<KvBlockStore> store_;
  std::unique_ptr<OffloadDirectory> offload_dir_;
  std::unordered_map<uint64_t, KvBlock> offload_payloads_;
  int64_t offload_hit_tokens_ = 0;
  int64_t offload_demotions_ = 0;
  int64_t offload_promotions_ = 0;

  std::unique_ptr<JctEstimator> estimator_;
  std::unique_ptr<Scheduler> scheduler_;
  // Admission cost model handed to Scheduler::PickBatch (ISSUE 9); built
  // once from the model config + prefill mode, immutable afterwards.
  BatchBudget batch_budget_;

  std::chrono::steady_clock::time_point epoch_;

  // --- Queue, stats, runtime lifecycle, guarded by mu_ ----------------
  mutable std::mutex mu_;
  std::condition_variable dispatch_cv_;
  std::vector<Pending> waiting_;
  int64_t next_id_ = 0;
  int64_t next_group_ = 1;  // 0 is the "ungrouped" sentinel
  // Lifecycle tracking (ISSUE 5/6): requests currently between dequeue and
  // finalization (for Phase, in-flight cancellation and the watchdog), and
  // in-flight ids whose results must be discarded on completion
  // (mark-and-ignore).
  struct RunningEntry {
    double started_s = 0.0;       // when the id left the queue
    bool watchdog_fired = false;  // the watchdog fails each id at most once
    std::shared_ptr<std::promise<Result<ScoringResponse>>> promise;
    std::shared_ptr<std::atomic<bool>> fulfilled;
    std::shared_ptr<const GroupCallback> on_done;
    size_t on_done_index = 0;
  };
  std::unordered_map<int64_t, RunningEntry> running_;
  std::unordered_set<int64_t> cancelled_in_flight_;
  EngineStats stats_;
  // Overload shedding state (hysteresis) and sticky watchdog history, both
  // under mu_ (ISSUE 6).
  bool shedding_ = false;
  bool watchdog_ever_fired_ = false;
  bool watchdog_stop_ = false;
  std::condition_variable watchdog_cv_;
  std::thread watchdog_;
  int in_flight_ = 0;   // dispatcher-admitted requests holding executor slots
  int executing_ = 0;   // all lanes currently inside Execute (incl. ScoreSync)
  bool runtime_running_ = false;
  bool draining_ = false;
  // ProfileJct in progress: excludes StartWorker/RunPending so the
  // estimator/scheduler swap can never race an in-flight pick.
  bool profiling_ = false;

  std::unique_ptr<BlockingQueue<PrefillBatchPending>> exec_queue_;  // dispatcher -> executors
  std::thread dispatcher_;
  std::vector<std::thread> executors_;
};

}  // namespace prefillonly

#endif  // SRC_CORE_ENGINE_H_
