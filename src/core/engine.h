// The real PrefillOnly engine: the paper's system, runnable on CPU.
//
// Wires together everything below it:
//   * LlamaModel with HYBRID PREFILLING (§4) — attention unchunked, linear
//     layers chunk-by-chunk, with output preallocation and in-place reuse;
//   * SUFFIX KV CACHE DISCARDING (§5.1) — only the prefix that fits the
//     cache budget is retained, via KvRetention::kPrefixBudget;
//   * a block-granular PREFIX CACHE (§2.1): PrefixCache metadata plus
//     KvBlockStore tensor payloads, LRU-evicted under a token budget;
//   * SRJF scheduling with CONTINUOUS JCT CALIBRATION (§6.3, Algorithm 1):
//     before every scheduling decision the cache-hit length of each waiting
//     request is refreshed against the live cache, and a starvation offset
//     lambda * queueing-time keeps the tail bounded;
//   * constrained sampling (§2.3): probabilities over the caller's allowed
//     token list, from a single prefill pass.
//
// Two frontends:
//   * synchronous: Submit(...) then RunPending() — deterministic, used by
//     tests and benchmarks;
//   * asynchronous: StartWorker() + Submit(...) + a response callback —
//     mirrors the paper's frontend/scheduler process split (§3.1).
#ifndef SRC_CORE_ENGINE_H_
#define SRC_CORE_ENGINE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/queue.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/core/kv_block_store.h"
#include "src/core/request.h"
#include "src/kvcache/offload_directory.h"
#include "src/kvcache/prefix_cache.h"
#include "src/model/llama.h"
#include "src/sched/jct.h"
#include "src/sched/scheduler.h"

namespace prefillonly {

struct EngineOptions {
  ModelConfig model = ModelConfig::Small();
  uint64_t weight_seed = 42;

  // Execution strategy. kHybrid is the paper's engine; kStandard/kChunked
  // turn the same engine into the baselines for A/B comparisons.
  PrefillMode mode = PrefillMode::kHybrid;
  int64_t chunk_size = 64;
  bool preallocate_outputs = true;
  bool in_place = true;

  // Intra-op parallelism: CPU threads used by every kernel of the forward
  // pass (ISSUE 1). 0 = hardware_concurrency; 1 = exact legacy serial
  // execution (no pool machinery at all). Logits are bitwise identical for
  // every value — work is partitioned so each output element is owned by
  // exactly one thread with a fixed accumulation order. The activation
  // budget is thread-count-independent: attention's extra per-thread score
  // rows are untracked host scratch, so the tracked footprint (and the
  // activation walker's predictions) match the serial seed exactly.
  int num_threads = 0;

  // Activation budget in bytes (0 = unlimited). Exceeding it fails the
  // request with kResourceExhausted — the CPU analogue of GPU OOM.
  size_t activation_budget_bytes = 0;

  // Prefix-cache budget in tokens; KV beyond it is discarded (suffix KV
  // cache discarding). 0 disables caching entirely.
  int64_t cache_budget_tokens = 4096;
  // Second-tier budget (§9 "offloading the KV caches to CPU"): blocks
  // evicted from the primary cache are demoted here instead of discarded,
  // and reloaded on a later hit. 0 keeps the paper's default (discard).
  int64_t cpu_offload_budget_tokens = 0;
  int block_size = 32;

  int64_t max_input_length = 1 << 20;

  SchedPolicy policy = SchedPolicy::kSrjfCalibrated;
  // Starvation offset in estimator units per second (§6.3).
  double lambda = 500.0;
};

struct EngineStats {
  int64_t submitted = 0;
  int64_t completed = 0;
  int64_t failed = 0;
  double total_execute_s = 0.0;
  size_t peak_activation_bytes = 0;
  size_t cache_bytes = 0;
  PrefixCacheStats cache;
  // Offload tier (zeros unless cpu_offload_budget_tokens > 0).
  size_t offload_bytes = 0;
  int64_t offload_hit_tokens = 0;
  int64_t offload_demotions = 0;
  int64_t offload_promotions = 0;
};

class Engine {
 public:
  explicit Engine(EngineOptions options);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const EngineOptions& options() const { return options_; }
  const LlamaModel& model() const { return *model_; }

  // --- Synchronous frontend -------------------------------------------
  // Validates and enqueues; returns the request id.
  Result<int64_t> Submit(ScoringRequest request);
  // Schedules and executes everything queued; returns responses in
  // completion (i.e. scheduling) order.
  std::vector<ScoringResponse> RunPending();
  // Convenience: submit one request and run it to completion.
  Result<ScoringResponse> ScoreSync(ScoringRequest request);

  // --- Asynchronous frontend ------------------------------------------
  // Responses are delivered on the worker thread. Do not mix with
  // RunPending().
  using ResponseCallback = std::function<void(Result<ScoringResponse>)>;
  void StartWorker(ResponseCallback callback);
  void StopWorker();

  // --- JCT profiling (§6.3) -------------------------------------------
  // Times real prefill passes over an (n_input, n_cached) grid and fits the
  // linear JCT model; on success the scheduler uses it instead of the
  // cache-miss-token proxy.
  Result<double> ProfileJct(int64_t max_input_len, int64_t granularity);

  EngineStats stats() const;
  // Seconds since engine construction (the queueing-time clock).
  double NowSeconds() const;

 private:
  struct Pending {
    int64_t id;
    ScoringRequest request;
    double arrival_s;
    std::vector<uint64_t> chain;
  };

  Status Validate(const ScoringRequest& request) const;
  Result<ScoringResponse> Execute(Pending pending);
  size_t PickIndex();  // scheduling decision over waiting_
  void WorkerLoop(ResponseCallback callback);

  EngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // intra-op workers, shared by the model
  std::unique_ptr<LlamaModel> model_;
  TrackingAllocator activations_;
  TrackingAllocator cache_memory_;
  TrackingAllocator offload_memory_;  // the "CPU side" of the offload tier
  std::unique_ptr<PrefixCache> cache_;
  std::unique_ptr<KvBlockStore> store_;
  std::unique_ptr<OffloadDirectory> offload_dir_;
  std::unordered_map<uint64_t, KvBlock> offload_payloads_;
  int64_t offload_hit_tokens_ = 0;
  int64_t offload_demotions_ = 0;
  int64_t offload_promotions_ = 0;
  std::unique_ptr<JctEstimator> estimator_;
  std::unique_ptr<Scheduler> scheduler_;

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Pending> waiting_;
  int64_t next_id_ = 0;
  EngineStats stats_;

  BlockingQueue<Pending> inbox_;  // async frontend
  std::thread worker_;
  bool worker_running_ = false;
};

}  // namespace prefillonly

#endif  // SRC_CORE_ENGINE_H_
