// Tensor payloads for cached KV blocks.
//
// PrefixCache (src/kvcache) tracks WHICH prefixes are cached as block
// metadata; this store holds the actual per-layer K/V tensors for each
// cached block on the real CPU engine. It subscribes to the cache's
// eviction listener so payloads die with their metadata, and it can
// assemble the contiguous prefix KvCacheData that LlamaModel::Prefill
// consumes from a run of matched blocks.
#ifndef SRC_CORE_KV_BLOCK_STORE_H_
#define SRC_CORE_KV_BLOCK_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/kvcache/block_allocator.h"
#include "src/model/config.h"
#include "src/model/kv.h"
#include "src/tensor/tracking_allocator.h"

namespace prefillonly {

class KvBlockStore {
 public:
  KvBlockStore(const ModelConfig& model, int block_size, TrackingAllocator& alloc);

  // Stores the KV rows for one block: `source` must cover token positions
  // [block_index * block_size, (block_index + 1) * block_size) relative to
  // source_start (the absolute position of source row 0).
  void Put(BlockId block, const KvCacheData& source, int64_t source_start,
           int64_t block_index);

  // Stores an already-materialized block payload (offload-tier promotion).
  void PutBlock(BlockId block, KvBlock payload);

  // Removes and returns the payload (empty KvBlock if absent) — used when a
  // block is demoted to the offload tier instead of dropped.
  KvBlock Take(BlockId block);

  void Drop(BlockId block);
  bool Contains(BlockId block) const { return blocks_.contains(block); }
  size_t block_count() const { return blocks_.size(); }
  size_t bytes() const;

  // Concatenates `blocks` (in order) into a contiguous prefix KvCacheData of
  // blocks.size() * block_size tokens. Every id must be present.
  KvCacheData AssemblePrefix(const std::vector<BlockId>& blocks,
                             int64_t n_blocks) const;

 private:
  int64_t n_layers_;
  int64_t kv_width_;
  int block_size_;
  TrackingAllocator& alloc_;
  std::unordered_map<BlockId, KvBlock> blocks_;
};

}  // namespace prefillonly

#endif  // SRC_CORE_KV_BLOCK_STORE_H_
