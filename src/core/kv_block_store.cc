#include "src/core/kv_block_store.h"

#include <cassert>
#include <cstring>

namespace prefillonly {

KvBlockStore::KvBlockStore(const ModelConfig& model, int block_size,
                           TrackingAllocator& alloc)
    : n_layers_(model.n_layers),
      kv_width_(model.kv_size()),
      block_size_(block_size),
      alloc_(alloc) {}

void KvBlockStore::Put(BlockId block, const KvCacheData& source, int64_t source_start,
                       int64_t block_index) {
  assert(static_cast<int64_t>(source.layers.size()) == n_layers_);
  blocks_[block] = CopyBlockFrom(source, source_start, block_index, block_size_, alloc_);
}

void KvBlockStore::PutBlock(BlockId block, KvBlock payload) {
  assert(static_cast<int64_t>(payload.layers.size()) == n_layers_);
  blocks_[block] = std::move(payload);
}

KvBlock KvBlockStore::Take(BlockId block) {
  auto it = blocks_.find(block);
  if (it == blocks_.end()) {
    return KvBlock{};
  }
  KvBlock payload = std::move(it->second);
  blocks_.erase(it);
  return payload;
}

void KvBlockStore::Drop(BlockId block) { blocks_.erase(block); }

size_t KvBlockStore::bytes() const {
  size_t total = 0;
  for (const auto& [id, data] : blocks_) {
    total += data.bytes();
  }
  return total;
}

KvCacheData KvBlockStore::AssemblePrefix(const std::vector<BlockId>& blocks,
                                         int64_t n_blocks) const {
  assert(n_blocks <= static_cast<int64_t>(blocks.size()));
  KvCacheData out;
  out.n_tokens = n_blocks * block_size_;
  out.layers.resize(static_cast<size_t>(n_layers_));
  for (int64_t l = 0; l < n_layers_; ++l) {
    auto& layer = out.layers[static_cast<size_t>(l)];
    layer.k = Tensor::Uninit(alloc_, {out.n_tokens, kv_width_}, "kvstore.prefix.k");
    layer.v = Tensor::Uninit(alloc_, {out.n_tokens, kv_width_}, "kvstore.prefix.v");
  }
  for (int64_t b = 0; b < n_blocks; ++b) {
    auto it = blocks_.find(blocks[static_cast<size_t>(b)]);
    assert(it != blocks_.end());
    CopyBlockInto(it->second, out, b, block_size_);
  }
  return out;
}

}  // namespace prefillonly
