#include "src/gpu/specs.h"

namespace prefillonly {

namespace {
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
constexpr double kTera = 1e12;
constexpr double kGiga = 1e9;
}  // namespace

GpuSpec GpuSpec::L4() {
  return GpuSpec{.name = "L4",
                 .mem_bytes = 24 * kGiB,
                 .flops_bf16 = 121 * kTera,
                 .flops_fp8 = 242 * kTera,
                 .fp8_compute = true,
                 .hbm_bandwidth = 300 * kGiga};
}

GpuSpec GpuSpec::A100_40G() {
  // A100 has no fp8 tensor cores: fp8-quantized weights are dequantized and
  // computed in bf16, so fp8 peak == bf16 peak.
  return GpuSpec{.name = "A100-40G",
                 .mem_bytes = 40 * kGiB,
                 .flops_bf16 = 312 * kTera,
                 .flops_fp8 = 312 * kTera,
                 .fp8_compute = false,
                 .hbm_bandwidth = 1555 * kGiga};
}

GpuSpec GpuSpec::H100_80G() {
  return GpuSpec{.name = "H100-80G",
                 .mem_bytes = 80 * kGiB,
                 .flops_bf16 = 756 * kTera,
                 .flops_fp8 = 1513 * kTera,
                 .fp8_compute = true,
                 .hbm_bandwidth = 2000 * kGiga};
}

LinkSpec LinkSpec::PcieGen4() {
  return LinkSpec{.name = "PCIe4", .bandwidth = 25 * kGiga, .latency_s = 30e-6};
}
LinkSpec LinkSpec::PcieGen5() {
  return LinkSpec{.name = "PCIe5", .bandwidth = 50 * kGiga, .latency_s = 25e-6};
}
LinkSpec LinkSpec::NvLink() {
  return LinkSpec{.name = "NVLink", .bandwidth = 450 * kGiga, .latency_s = 10e-6};
}

int64_t LlmSpec::linear_params_per_layer() const {
  return hidden * (q_size() + 2 * kv_width())  // fused QKV projection
         + q_size() * hidden                   // output projection
         + 2 * hidden * intermediate           // fused gate_up projection
         + intermediate * hidden;              // down projection
}

int64_t LlmSpec::total_params() const {
  return linear_params_total() + 2 * vocab * hidden;  // embedding + LM head
}

LlmSpec LlmSpec::Llama31_8B() {
  return LlmSpec{.name = "Llama-3.1-8B",
                 .n_layers = 32,
                 .hidden = 4096,
                 .n_heads = 32,
                 .n_kv_heads = 8,
                 .head_dim = 128,
                 .intermediate = 14336,
                 .vocab = 128256,
                 .weight_bytes_per_param = 2};
}

LlmSpec LlmSpec::Qwen_32B_Fp8() {
  return LlmSpec{.name = "Qwen-32B-FP8",
                 .n_layers = 64,
                 .hidden = 5120,
                 .n_heads = 40,
                 .n_kv_heads = 8,
                 .head_dim = 128,
                 .intermediate = 27648,
                 .vocab = 152064,
                 .weight_bytes_per_param = 1};
}

LlmSpec LlmSpec::Llama33_70B_Fp8() {
  return LlmSpec{.name = "Llama-3.3-70B-FP8",
                 .n_layers = 80,
                 .hidden = 8192,
                 .n_heads = 64,
                 .n_kv_heads = 8,
                 .head_dim = 128,
                 .intermediate = 28672,
                 .vocab = 128256,
                 .weight_bytes_per_param = 1};
}

HardwareSetup HardwareSetup::L4_Llama8B() {
  return HardwareSetup{.name = "L4",
                       .gpu = GpuSpec::L4(),
                       .n_gpus = 2,
                       .link = LinkSpec::PcieGen4(),
                       .llm = LlmSpec::Llama31_8B()};
}

HardwareSetup HardwareSetup::A100_Qwen32B() {
  return HardwareSetup{.name = "A100",
                       .gpu = GpuSpec::A100_40G(),
                       .n_gpus = 2,
                       .link = LinkSpec::PcieGen4(),
                       .llm = LlmSpec::Qwen_32B_Fp8()};
}

HardwareSetup HardwareSetup::H100_Llama70B() {
  return HardwareSetup{.name = "H100 w/o NVLink",
                       .gpu = GpuSpec::H100_80G(),
                       .n_gpus = 2,
                       .link = LinkSpec::PcieGen5(),
                       .llm = LlmSpec::Llama33_70B_Fp8()};
}

HardwareSetup HardwareSetup::H100_NvLink_Llama70B() {
  return HardwareSetup{.name = "H100 w/ NVLink",
                       .gpu = GpuSpec::H100_80G(),
                       .n_gpus = 2,
                       .link = LinkSpec::NvLink(),
                       .llm = LlmSpec::Llama33_70B_Fp8()};
}

std::vector<HardwareSetup> HardwareSetup::All() {
  return {L4_Llama8B(), A100_Qwen32B(), H100_Llama70B(), H100_NvLink_Llama70B()};
}

}  // namespace prefillonly
