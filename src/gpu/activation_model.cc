#include "src/gpu/activation_model.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace prefillonly {

namespace {

// Tracks current/peak bytes through a symbolic alloc/free schedule.
class Ledger {
 public:
  int64_t Alloc(int64_t bytes) {
    current_ += bytes;
    peak_ = std::max(peak_, current_);
    return bytes;
  }
  void Free(int64_t bytes) { current_ -= bytes; }
  int64_t current() const { return current_; }
  int64_t peak() const { return peak_; }

 private:
  int64_t current_ = 0;
  int64_t peak_ = 0;
};

// One attention + MLP block over `rows` rows, mirroring the allocation
// order of PrefillStandard / PrefillChunked in src/model/llama.cc.
// `kv_alloc_per_layer` is nonzero only on the naive drop-KV path, where
// each layer's KV is transient.
void FullWidthLayer(Ledger& ledger, const ActivationShape& s, int64_t rows,
                    int64_t kv_alloc_per_layer) {
  const int64_t normed = ledger.Alloc(rows * s.hidden * s.act_bytes);
  const int64_t q = ledger.Alloc(rows * s.q_size * s.act_bytes);
  int64_t kv_local = 0;
  if (kv_alloc_per_layer > 0) {
    kv_local = ledger.Alloc(kv_alloc_per_layer);
  }
  ledger.Free(normed);
  const int64_t attn_out = ledger.Alloc(rows * s.q_size * s.act_bytes);
  ledger.Free(q);
  const int64_t attn_proj = ledger.Alloc(rows * s.hidden * s.act_bytes);
  ledger.Free(attn_out);
  ledger.Free(attn_proj);
  const int64_t normed2 = ledger.Alloc(rows * s.hidden * s.act_bytes);
  const int64_t gate_up = ledger.Alloc(rows * 2 * s.intermediate * s.act_bytes);
  ledger.Free(normed2);
  const int64_t mlp_act = ledger.Alloc(rows * s.intermediate * s.act_bytes);
  ledger.Free(gate_up);
  const int64_t down = ledger.Alloc(rows * s.hidden * s.act_bytes);
  ledger.Free(mlp_act);
  ledger.Free(down);
  if (kv_local > 0) {
    ledger.Free(kv_local);
  }
}

PassPeak Standard(const ActivationShape& s, int64_t n_new, int64_t n_total,
                  const PassOptions& opt) {
  Ledger ledger;
  ledger.Alloc(n_new * s.hidden * s.act_bytes);  // hidden
  int64_t resident_kv = 0;
  const int64_t kv_layer_bytes = 2 * n_new * s.kv_width * s.kv_bytes;
  if (!opt.drop_kv_in_pass) {
    resident_kv = s.n_layers * kv_layer_bytes;
    ledger.Alloc(resident_kv);  // pass KV for every layer
  }
  ledger.Alloc(n_total * s.score_bytes);  // attention score scratch
  // Every layer has an identical schedule; two iterations reach the peak.
  const int64_t reps = std::min<int64_t>(s.n_layers, 2);
  for (int64_t l = 0; l < reps; ++l) {
    FullWidthLayer(ledger, s, n_new, opt.drop_kv_in_pass ? kv_layer_bytes : 0);
  }
  return PassPeak{ledger.peak(), opt.drop_kv_in_pass ? kv_layer_bytes : resident_kv};
}

PassPeak Chunked(const ActivationShape& s, int64_t n_new, int64_t n_total,
                 const PassOptions& opt) {
  Ledger ledger;
  const int64_t chunk = std::min(opt.chunk, n_new);
  const int64_t resident_kv = s.n_layers * 2 * n_new * s.kv_width * s.kv_bytes;
  ledger.Alloc(resident_kv);
  ledger.Alloc(n_total * s.score_bytes);
  // All full chunks are identical; replaying one suffices for the peak.
  const int64_t hidden_c = ledger.Alloc(chunk * s.hidden * s.act_bytes);
  const int64_t reps = std::min<int64_t>(s.n_layers, 2);
  for (int64_t l = 0; l < reps; ++l) {
    FullWidthLayer(ledger, s, chunk, 0);
  }
  ledger.Free(hidden_c);
  return PassPeak{ledger.peak(), resident_kv};
}

PassPeak Hybrid(const ActivationShape& s, int64_t n_new, int64_t n_total,
                const PassOptions& opt) {
  Ledger ledger;
  const int64_t chunk = std::min(opt.chunk, n_new);
  ledger.Alloc(n_new * s.hidden * s.act_bytes);  // hidden
  if (opt.retained_new_tokens > 0) {
    ledger.Alloc(s.n_layers * 2 * opt.retained_new_tokens * s.kv_width * s.kv_bytes);
  }
  // One layer's KV at a time, plus whole-sequence Q / attention output /
  // norm buffer.
  const int64_t kv_current = 2 * n_new * s.kv_width * s.kv_bytes;
  ledger.Alloc(kv_current);
  ledger.Alloc(n_new * s.q_size * s.act_bytes);  // q_buf
  ledger.Alloc(n_new * s.q_size * s.act_bytes);  // attn_out
  ledger.Alloc(n_new * s.hidden * s.act_bytes);  // normed
  ledger.Alloc(n_total * s.score_bytes);         // scores
  if (opt.preallocate_outputs && !opt.in_place) {
    ledger.Alloc(n_new * s.hidden * s.act_bytes);  // proj_buf
  }

  // Mirrors chunked_linear in llama.cc. Without preallocation the chunk
  // outputs pile up and a full-width concat target is allocated while they
  // are still live (the 2x output footprint the preallocation optimization
  // removes). `prev_full` is the concat buffer reused as the next call's
  // target (and freed at its start).
  int64_t prev_full = 0;
  auto chunked_linear_out = [&](int64_t width_bytes_per_row) {
    if (opt.preallocate_outputs) {
      return;  // chunks written straight into a standing buffer
    }
    ledger.Free(prev_full);
    prev_full = 0;
    std::vector<int64_t> pieces;
    for (int64_t r0 = 0; r0 < n_new; r0 += chunk) {
      const int64_t cs = std::min(chunk, n_new - r0);
      pieces.push_back(ledger.Alloc(cs * width_bytes_per_row));
    }
    const int64_t full = ledger.Alloc(n_new * width_bytes_per_row);
    for (int64_t piece : pieces) {
      ledger.Free(piece);
    }
    prev_full = full;
  };

  const int64_t reps = std::min<int64_t>(s.n_layers, 2);
  for (int64_t l = 0; l < reps; ++l) {
    // QKV projections write into preallocated standing buffers: no allocs.
    chunked_linear_out(s.hidden * s.act_bytes);  // o_proj
    const int64_t gate_up_c = ledger.Alloc(chunk * 2 * s.intermediate * s.act_bytes);
    const int64_t mlp_act_c = ledger.Alloc(chunk * s.intermediate * s.act_bytes);
    chunked_linear_out(s.hidden * s.act_bytes);  // MLP down
    ledger.Free(gate_up_c);
    ledger.Free(mlp_act_c);
  }
  ledger.Free(prev_full);
  return PassPeak{ledger.peak(), kv_current};
}

}  // namespace

PassPeak SimulatePassMemory(const ActivationShape& shape, int64_t n_new,
                            int64_t n_cached, const PassOptions& options) {
  assert(n_new > 0);
  const int64_t n_total = n_new + n_cached;
  switch (options.strategy) {
    case PassStrategy::kStandard:
      return Standard(shape, n_new, n_total, options);
    case PassStrategy::kChunkedPrefill:
      return Chunked(shape, n_new, n_total, options);
    case PassStrategy::kHybrid:
      return Hybrid(shape, n_new, n_total, options);
  }
  return PassPeak{};
}

}  // namespace prefillonly
