// Roofline execution-time model for prefill passes.
//
// Time = max(compute, weight-sweep memory time) + fixed overheads, where
// compute splits into linear-layer FLOPs (run at the matmul efficiency of
// the weight dtype) and attention FLOPs (bf16, with a degraded efficiency
// when the attention kernel is chunked — the §2.5 "chunked prefill reduces
// attention kernel performance" effect, calibrated so a 20k-token request
// chunked at 512 loses ~14% end-to-end throughput).
//
// Tensor parallelism adds per-layer all-reduce time over the interconnect
// (the reason TP throughput lags even with NVLink, Fig. 8); pipeline
// parallelism is exposed as a per-stage time that the discrete-event
// simulator chains, so pipeline bubbles emerge from the queueing model
// rather than from a baked-in constant.
//
// Prefix caching enters as `n_cached`: cached tokens skip their linear
// FLOPs entirely and their attention query FLOPs (they are still attended
// to as keys) — which is exactly why JCT depends on the cache state and
// must be continuously recalibrated (§6.3).
#ifndef SRC_GPU_COST_MODEL_H_
#define SRC_GPU_COST_MODEL_H_

#include <cstdint>

#include "src/gpu/activation_model.h"
#include "src/gpu/specs.h"

namespace prefillonly {

struct CostModelConfig {
  double eff_linear = 0.55;        // achieved fraction of peak matmul FLOPs
  double eff_attn = 0.40;          // flash-attention efficiency, unchunked
  // Chunked attention kernel efficiency: calibrated so chunking a
  // 20k-token request at 512 costs ~14% end-to-end (§2.5).
  double eff_attn_chunked = 0.29;
  double chunk_overhead_s = 30e-6;    // per chunk per layer (launches, reads)
  double hybrid_chunk_overhead_s = 3e-6;  // linear-only chunking is cheap
  double pass_overhead_s = 0.004;  // scheduler + tokenizer + launch per pass
  double allreduce_latency_s = 40e-6;  // per collective
  double stage_handoff_s = 1e-3;   // PP activation transfer bookkeeping
  // vLLM's pipeline parallelism synchronizes stages at scheduler steps, so
  // it never reaches ideal pipelining even with balanced stages; observed
  // scaling efficiency for prefill-heavy work is ~0.75-0.85. Queueing
  // bubbles from length variance come on top (they emerge in the DES).
  double pp_efficiency = 0.8;
};

class CostModel {
 public:
  CostModel(LlmSpec llm, GpuSpec gpu, CostModelConfig config = {});

  const LlmSpec& llm() const { return llm_; }
  const CostModelConfig& config() const { return config_; }

  // FLOP counts (whole model, all layers).
  double LinearFlops(int64_t n_new) const;
  double AttentionFlops(int64_t n_new, int64_t n_cached) const;

  // Single-GPU prefill time: PrefillOnly (kHybrid), vanilla vLLM
  // (kStandard) and the chunked-prefill baseline (kChunkedPrefill).
  double PrefillTime(int64_t n_new, int64_t n_cached, PassStrategy strategy,
                     int64_t chunk) const;

  // Tensor-parallel prefill over `degree` GPUs joined by `link`.
  double TensorParallelTime(int64_t n_new, int64_t n_cached, int degree,
                            const LinkSpec& link, PassStrategy strategy,
                            int64_t chunk) const;

  // One pipeline stage (n_layers / degree) plus the activation handoff.
  // A request's latency is the sum over stages; throughput is set by the
  // slowest stage, which the simulator models with a queue per stage.
  double PipelineStageTime(int64_t n_new, int64_t n_cached, int degree,
                           const LinkSpec& link, PassStrategy strategy,
                           int64_t chunk) const;

  // One decoding step for a batch of sequences (memory-bound weight sweep).
  // Used by the prefill-vs-decode microbenchmark (§2.3's 1.5x claim).
  double DecodeStepTime(int batch) const;

 private:
  // Compute time for a `layer_fraction` slice of the model.
  double ComputeTime(int64_t n_new, int64_t n_cached, PassStrategy strategy,
                     int64_t chunk, double layer_fraction, double tensor_fraction) const;
  double LinearPeakFlops() const;

  LlmSpec llm_;
  GpuSpec gpu_;
  CostModelConfig config_;
};

}  // namespace prefillonly

#endif  // SRC_GPU_COST_MODEL_H_
