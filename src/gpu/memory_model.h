// GPU memory accounting per engine configuration.
//
// Combines weights, runtime overhead, the activation-schedule walker
// (activation_model.h) and KV-cache arithmetic to answer the questions the
// paper's evaluation asks:
//
//  * Table 2  — the maximum input length (MIL) each engine can serve;
//  * Fig. 10  — how each hybrid-prefilling optimization moves the MIL;
//  * §3.1     — how much memory is left for the prefix-cache pool after
//               the profile run reserves activation space.
//
// Parallel engines (TP/PP) are modeled per GPU by scaling the activation
// shape the same way the parallelism scales the tensors: TP divides head
// counts and MLP width, PP divides layer count. vLLM enables chunked
// prefill by default for these baselines, so their activation reserve is
// chunk-sized (documented deviation: the paper's A100 tensor-parallel MIL
// suggests their TP run did not chunk).
#ifndef SRC_GPU_MEMORY_MODEL_H_
#define SRC_GPU_MEMORY_MODEL_H_

#include <cstdint>
#include <string>

#include "src/gpu/activation_model.h"
#include "src/gpu/specs.h"

namespace prefillonly {

enum class EngineKind {
  kPagedAttention,   // vanilla vLLM: full-sequence pass, all KV resident
  kChunkedPrefill,   // Sarathi-style chunking, all KV resident
  kPipelineParallel, // 2-stage PP, chunked, KV split by layers
  kTensorParallel,   // TP2, chunked, KV split by heads
  kPrefillOnly,      // hybrid prefilling + suffix KV discarding (this paper)
  kKvDropNaive,      // §4.1 strawman: standard pass, drop KV per layer
};

std::string_view EngineKindName(EngineKind kind);

struct MemoryModelConfig {
  double gpu_mem_utilization = 0.94;     // vLLM-style reserve fraction
  double runtime_overhead_bytes = 2.0e9;  // CUDA ctx, NCCL, compile workspaces
  int64_t chunk_tokens = 512;            // chunked-prefill baseline
  int64_t hybrid_chunk_tokens = 2048;    // PrefillOnly's linear-layer chunk
  bool hybrid_preallocate = true;
  bool hybrid_in_place = true;
  int parallel_degree = 2;  // TP/PP width
  // Calibrated against Table 2: the TP baseline composes with vLLM's
  // default chunked prefill; the PP baseline does not (full-sequence
  // activation temporaries per stage). See EXPERIMENTS.md for the two
  // cells where this modeling deviates from the paper.
  bool tp_uses_chunked = true;
  bool pp_uses_chunked = false;
};

class MemoryModel {
 public:
  MemoryModel(LlmSpec llm, GpuSpec gpu, MemoryModelConfig config = {});

  const LlmSpec& llm() const { return llm_; }
  const GpuSpec& gpu() const { return gpu_; }
  const MemoryModelConfig& config() const { return config_; }

  // Memory the engine may use on one GPU (capacity x utilization - runtime).
  double UsableBytesPerGpu() const;
  double WeightBytesPerGpu(EngineKind kind) const;

  // Peak in-pass bytes (activations + transient/resident KV) on one GPU for
  // a prefill of `n_new` tokens with `n_cached` prefix tokens reused.
  PassPeak PassPeakBytes(EngineKind kind, int64_t n_new, int64_t n_cached = 0) const;

  // Largest request the engine can serve at all; 0 when even one token
  // does not fit (weights alone exceed the GPU).
  int64_t MaxInputLength(EngineKind kind) const;

  // Bytes left for the prefix-cache block pool on one GPU after the profile
  // run reserves activation space for requests up to `reserve_tokens`
  // (paper §3.1). KV resident in the pass is excluded: it lives in the pool.
  double CachePoolBytesPerGpu(EngineKind kind, int64_t reserve_tokens) const;

  // KV bytes per token on one GPU (TP halves it via heads, PP via layers).
  double KvBytesPerTokenPerGpu(EngineKind kind) const;

  // Prefix-cache capacity in tokens for one engine INSTANCE: single GPU for
  // non-parallel engines, all GPUs combined for TP/PP (the paper's Fig. 9
  // "parallelize the prefix cache across GPUs").
  int64_t CachePoolTokensPerInstance(EngineKind kind, int64_t reserve_tokens) const;

  // The activation shape (per GPU) the walker uses for this engine.
  ActivationShape ShapeFor(EngineKind kind) const;
  PassOptions OptionsFor(EngineKind kind) const;

 private:
  bool IsParallel(EngineKind kind) const {
    return kind == EngineKind::kPipelineParallel || kind == EngineKind::kTensorParallel;
  }

  LlmSpec llm_;
  GpuSpec gpu_;
  MemoryModelConfig config_;
};

}  // namespace prefillonly

#endif  // SRC_GPU_MEMORY_MODEL_H_
