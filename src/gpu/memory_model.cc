#include "src/gpu/memory_model.h"

#include <algorithm>
#include <cassert>

namespace prefillonly {

std::string_view EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kPagedAttention:
      return "PagedAttention";
    case EngineKind::kChunkedPrefill:
      return "Chunked Prefill";
    case EngineKind::kPipelineParallel:
      return "Pipeline Parallel";
    case EngineKind::kTensorParallel:
      return "Tensor Parallel";
    case EngineKind::kPrefillOnly:
      return "PrefillOnly";
    case EngineKind::kKvDropNaive:
      return "KV-drop (naive)";
  }
  return "?";
}

MemoryModel::MemoryModel(LlmSpec llm, GpuSpec gpu, MemoryModelConfig config)
    : llm_(std::move(llm)), gpu_(std::move(gpu)), config_(config) {}

double MemoryModel::UsableBytesPerGpu() const {
  return gpu_.mem_bytes * config_.gpu_mem_utilization - config_.runtime_overhead_bytes;
}

double MemoryModel::WeightBytesPerGpu(EngineKind kind) const {
  const double total = llm_.weight_bytes();
  return IsParallel(kind) ? total / config_.parallel_degree : total;
}

ActivationShape MemoryModel::ShapeFor(EngineKind kind) const {
  ActivationShape s;
  s.n_layers = llm_.n_layers;
  s.hidden = llm_.hidden;
  s.q_size = llm_.q_size();
  s.kv_width = llm_.kv_width();
  s.intermediate = llm_.intermediate;
  s.act_bytes = llm_.act_bytes;
  s.kv_bytes = llm_.kv_bytes;
  const int64_t p = config_.parallel_degree;
  if (kind == EngineKind::kTensorParallel) {
    // TP shards heads and MLP columns; the hidden (residual) dimension and
    // layer count stay whole on every GPU.
    s.q_size /= p;
    s.kv_width /= p;
    s.intermediate /= p;
  } else if (kind == EngineKind::kPipelineParallel) {
    s.n_layers = (s.n_layers + p - 1) / p;
  }
  return s;
}

PassOptions MemoryModel::OptionsFor(EngineKind kind) const {
  PassOptions opt;
  switch (kind) {
    case EngineKind::kPagedAttention:
      opt.strategy = PassStrategy::kStandard;
      break;
    case EngineKind::kKvDropNaive:
      opt.strategy = PassStrategy::kStandard;
      opt.drop_kv_in_pass = true;
      break;
    case EngineKind::kChunkedPrefill:
      opt.strategy = PassStrategy::kChunkedPrefill;
      opt.chunk = config_.chunk_tokens;
      break;
    case EngineKind::kPipelineParallel:
      opt.strategy = config_.pp_uses_chunked ? PassStrategy::kChunkedPrefill
                                             : PassStrategy::kStandard;
      opt.chunk = config_.chunk_tokens;
      break;
    case EngineKind::kTensorParallel:
      opt.strategy = config_.tp_uses_chunked ? PassStrategy::kChunkedPrefill
                                             : PassStrategy::kStandard;
      opt.chunk = config_.chunk_tokens;
      break;
    case EngineKind::kPrefillOnly:
      opt.strategy = PassStrategy::kHybrid;
      opt.chunk = config_.hybrid_chunk_tokens;
      opt.preallocate_outputs = config_.hybrid_preallocate;
      opt.in_place = config_.hybrid_in_place;
      break;
  }
  return opt;
}

PassPeak MemoryModel::PassPeakBytes(EngineKind kind, int64_t n_new,
                                    int64_t n_cached) const {
  return SimulatePassMemory(ShapeFor(kind), n_new, n_cached, OptionsFor(kind));
}

int64_t MemoryModel::MaxInputLength(EngineKind kind) const {
  const double budget = UsableBytesPerGpu() - WeightBytesPerGpu(kind);
  if (budget <= 0) {
    return 0;
  }
  const auto fits = [&](int64_t tokens) {
    return static_cast<double>(PassPeakBytes(kind, tokens).peak_bytes) <= budget;
  };
  if (!fits(1)) {
    return 0;
  }
  int64_t lo = 1;          // fits
  int64_t hi = 64LL << 20;  // 64M tokens: above any realistic answer
  if (fits(hi)) {
    return hi;
  }
  while (hi - lo > 1) {
    const int64_t mid = lo + (hi - lo) / 2;
    (fits(mid) ? lo : hi) = mid;
  }
  return lo;
}

double MemoryModel::CachePoolBytesPerGpu(EngineKind kind, int64_t reserve_tokens) const {
  const PassPeak peak = PassPeakBytes(kind, std::max<int64_t>(reserve_tokens, 1));
  // The resident pass KV lives in the block pool itself (it becomes cache
  // on completion), so only the non-KV activation peak is reserved.
  const double activation_reserve =
      static_cast<double>(peak.peak_bytes - peak.resident_kv_bytes);
  const double pool = UsableBytesPerGpu() - WeightBytesPerGpu(kind) - activation_reserve;
  return std::max(pool, 0.0);
}

double MemoryModel::KvBytesPerTokenPerGpu(EngineKind kind) const {
  const double full = static_cast<double>(llm_.kv_bytes_per_token());
  return IsParallel(kind) ? full / config_.parallel_degree : full;
}

int64_t MemoryModel::CachePoolTokensPerInstance(EngineKind kind,
                                                int64_t reserve_tokens) const {
  const double per_gpu = CachePoolBytesPerGpu(kind, reserve_tokens);
  const double kv_per_token = KvBytesPerTokenPerGpu(kind);
  if (kv_per_token <= 0) {
    return 0;
  }
  const double gpus_per_instance = IsParallel(kind) ? config_.parallel_degree : 1;
  return static_cast<int64_t>(per_gpu / kv_per_token * gpus_per_instance);
}

}  // namespace prefillonly
