// Symbolic replay of the prefill pass's allocation schedule.
//
// SimulatePassMemory walks the exact sequence of tensor allocations and
// frees that LlamaModel::Prefill performs (src/model/llama.cc), tracking
// current and peak bytes — but symbolically, parameterized by arbitrary
// layer counts and widths. This gives:
//
//  * exact agreement with the measured TrackingAllocator peak for the CPU
//    models (asserted by tests/gpu_test.cc), and
//  * peak GPU memory estimates for paper-scale models (Llama-70B on H100),
//    which drive the Table 2 max-input-length numbers and the Fig. 10
//    ablation.
//
// This mirrors the paper's "profile run" (§3.1): PrefillOnly forwards a
// fake maximum-length request and measures peak memory; we replay the same
// schedule analytically.
#ifndef SRC_GPU_ACTIVATION_MODEL_H_
#define SRC_GPU_ACTIVATION_MODEL_H_

#include <cstdint>

namespace prefillonly {

// Byte-level shape of one transformer pass. Construct from LlmSpec
// (src/gpu/specs.h, GPU dtypes) or from ModelConfig (CPU float32).
struct ActivationShape {
  int64_t n_layers = 0;
  int64_t hidden = 0;
  int64_t q_size = 0;
  int64_t kv_width = 0;  // n_kv_heads * head_dim
  int64_t intermediate = 0;
  int64_t act_bytes = 2;    // activation element size
  int64_t kv_bytes = 2;     // KV cache element size
  int64_t score_bytes = 4;  // attention score scratch element size
};

enum class PassStrategy { kStandard, kChunkedPrefill, kHybrid };

struct PassOptions {
  PassStrategy strategy = PassStrategy::kHybrid;
  int64_t chunk = 512;
  // Hybrid ablation flags (must match model::PrefillOptions semantics).
  bool preallocate_outputs = true;
  bool in_place = true;
  // Standard-only naive KV-drop ablation.
  bool drop_kv_in_pass = false;
  // New tokens whose KV survives the pass (hybrid retained prefix).
  int64_t retained_new_tokens = 0;
};

struct PassPeak {
  int64_t peak_bytes = 0;      // peak of activations + in-pass KV
  int64_t resident_kv_bytes = 0;  // KV resident at the peak (pass KV)
};

PassPeak SimulatePassMemory(const ActivationShape& shape, int64_t n_new,
                            int64_t n_cached, const PassOptions& options);

}  // namespace prefillonly

#endif  // SRC_GPU_ACTIVATION_MODEL_H_
