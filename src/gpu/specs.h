// Hardware and model specifications for the analytic models.
//
// Everything here is a public datasheet number (GPU capacity, peak FLOPs,
// HBM bandwidth, interconnect bandwidth) or a published architecture shape
// (layer counts, head counts, MLP widths of the three models in the paper's
// Table 3). The cost and memory models in this directory combine them to
// reproduce the paper's quantitative evaluation without the hardware.
#ifndef SRC_GPU_SPECS_H_
#define SRC_GPU_SPECS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace prefillonly {

struct GpuSpec {
  std::string name;
  double mem_bytes = 0;
  double flops_bf16 = 0;  // dense peak, FLOP/s
  double flops_fp8 = 0;   // dense peak; == flops_bf16 when fp8 unsupported
  bool fp8_compute = false;
  double hbm_bandwidth = 0;  // bytes/s

  static GpuSpec L4();
  static GpuSpec A100_40G();
  static GpuSpec H100_80G();
};

struct LinkSpec {
  std::string name;
  double bandwidth = 0;  // effective bytes/s per direction
  double latency_s = 0;

  static LinkSpec PcieGen4();
  static LinkSpec PcieGen5();
  static LinkSpec NvLink();
};

// Full-size LLM architecture (the paper's Table 3 models). The scaled-down
// CPU models in src/model mirror these ratios.
struct LlmSpec {
  std::string name;
  int64_t n_layers = 0;
  int64_t hidden = 0;
  int64_t n_heads = 0;
  int64_t n_kv_heads = 0;
  int64_t head_dim = 0;
  int64_t intermediate = 0;
  int64_t vocab = 0;
  int weight_bytes_per_param = 2;  // 2 = bf16, 1 = fp8
  int act_bytes = 2;               // activations in bf16
  int kv_bytes = 2;                // KV cache in fp16

  int64_t q_size() const { return n_heads * head_dim; }
  int64_t kv_width() const { return n_kv_heads * head_dim; }
  // K+V bytes per token for one layer / all layers.
  int64_t kv_bytes_per_token_layer() const { return 2 * kv_width() * kv_bytes; }
  int64_t kv_bytes_per_token() const { return kv_bytes_per_token_layer() * n_layers; }

  int64_t linear_params_per_layer() const;
  int64_t linear_params_total() const { return linear_params_per_layer() * n_layers; }
  int64_t total_params() const;
  double weight_bytes() const {
    return static_cast<double>(total_params()) * weight_bytes_per_param;
  }

  static LlmSpec Llama31_8B();    // bf16
  static LlmSpec Qwen_32B_Fp8();  // DeepSeek-R1-Distill-Qwen-32B, fp8 weights
  static LlmSpec Llama33_70B_Fp8();
};

// One row of the paper's Table 3: GPUs + interconnect + model.
struct HardwareSetup {
  std::string name;
  GpuSpec gpu;
  int n_gpus = 2;
  LinkSpec link;
  LlmSpec llm;

  static HardwareSetup L4_Llama8B();
  static HardwareSetup A100_Qwen32B();
  static HardwareSetup H100_Llama70B();          // PCIe interconnect
  static HardwareSetup H100_NvLink_Llama70B();

  // All four, in the paper's order.
  static std::vector<HardwareSetup> All();
};

}  // namespace prefillonly

#endif  // SRC_GPU_SPECS_H_
