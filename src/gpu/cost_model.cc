#include "src/gpu/cost_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace prefillonly {

CostModel::CostModel(LlmSpec llm, GpuSpec gpu, CostModelConfig config)
    : llm_(std::move(llm)), gpu_(std::move(gpu)), config_(config) {}

double CostModel::LinearPeakFlops() const {
  return llm_.weight_bytes_per_param == 1 ? gpu_.flops_fp8 : gpu_.flops_bf16;
}

double CostModel::LinearFlops(int64_t n_new) const {
  return 2.0 * static_cast<double>(n_new) * static_cast<double>(llm_.linear_params_total());
}

double CostModel::AttentionFlops(int64_t n_new, int64_t n_cached) const {
  // Each new token i attends to n_cached + i + 1 keys; QK^T plus AV costs
  // 4 * head_dim FLOPs per (query head, key).
  const double n = static_cast<double>(n_new);
  const double keys = n * static_cast<double>(n_cached) + n * (n + 1.0) / 2.0;
  return 4.0 * static_cast<double>(llm_.head_dim) * static_cast<double>(llm_.n_heads) *
         static_cast<double>(llm_.n_layers) * keys;
}

double CostModel::ComputeTime(int64_t n_new, int64_t n_cached, PassStrategy strategy,
                              int64_t chunk, double layer_fraction,
                              double tensor_fraction) const {
  const double linear_flops = LinearFlops(n_new) * layer_fraction * tensor_fraction;
  const double attn_flops =
      AttentionFlops(n_new, n_cached) * layer_fraction * tensor_fraction;

  const bool chunked_attn = strategy == PassStrategy::kChunkedPrefill;
  const double attn_eff = chunked_attn ? config_.eff_attn_chunked : config_.eff_attn;
  double t = linear_flops / (LinearPeakFlops() * config_.eff_linear) +
             attn_flops / (gpu_.flops_bf16 * attn_eff);

  if (strategy != PassStrategy::kStandard && chunk > 0) {
    const double n_chunks = std::ceil(static_cast<double>(n_new) / static_cast<double>(chunk));
    const double per_chunk = strategy == PassStrategy::kHybrid
                                 ? config_.hybrid_chunk_overhead_s
                                 : config_.chunk_overhead_s;
    t += n_chunks * static_cast<double>(llm_.n_layers) * layer_fraction * per_chunk;
  }
  return t;
}

double CostModel::PrefillTime(int64_t n_new, int64_t n_cached, PassStrategy strategy,
                              int64_t chunk) const {
  assert(n_new > 0);
  const double compute = ComputeTime(n_new, n_cached, strategy, chunk, 1.0, 1.0);
  const double weight_sweep = llm_.weight_bytes() / gpu_.hbm_bandwidth;
  return std::max(compute, weight_sweep) + config_.pass_overhead_s;
}

double CostModel::TensorParallelTime(int64_t n_new, int64_t n_cached, int degree,
                                     const LinkSpec& link, PassStrategy strategy,
                                     int64_t chunk) const {
  assert(degree >= 1);
  const double compute =
      ComputeTime(n_new, n_cached, strategy, chunk, 1.0, 1.0 / degree);
  const double weight_sweep = llm_.weight_bytes() / degree / gpu_.hbm_bandwidth;
  // Two all-reduces per layer (after attention and after the MLP), each
  // moving the full hidden activation of the new tokens. Ring all-reduce
  // over d GPUs moves 2*(d-1)/d of the buffer per GPU.
  const double buffer =
      static_cast<double>(n_new) * static_cast<double>(llm_.hidden) * llm_.act_bytes;
  const double ring_factor = 2.0 * (degree - 1) / degree;
  const double comm =
      2.0 * static_cast<double>(llm_.n_layers) *
      (buffer * ring_factor / link.bandwidth + link.latency_s + config_.allreduce_latency_s);
  // The paper observes GPUs idle during all-reduce: communication is not
  // overlapped with compute.
  return std::max(compute, weight_sweep) + comm + config_.pass_overhead_s;
}

double CostModel::PipelineStageTime(int64_t n_new, int64_t n_cached, int degree,
                                    const LinkSpec& link, PassStrategy strategy,
                                    int64_t chunk) const {
  assert(degree >= 1);
  const double compute =
      ComputeTime(n_new, n_cached, strategy, chunk, 1.0 / degree, 1.0);
  const double weight_sweep = llm_.weight_bytes() / degree / gpu_.hbm_bandwidth;
  // Hand the hidden activations of all new tokens to the next stage.
  const double handoff =
      static_cast<double>(n_new) * static_cast<double>(llm_.hidden) * llm_.act_bytes /
          link.bandwidth +
      config_.stage_handoff_s;
  return (std::max(compute, weight_sweep) + handoff +
          config_.pass_overhead_s / degree) /
         config_.pp_efficiency;
}

double CostModel::DecodeStepTime(int batch) const {
  assert(batch >= 1);
  // One token per sequence: a full weight sweep (memory-bound) or the
  // batched matmul FLOPs, whichever dominates.
  const double compute = 2.0 * static_cast<double>(llm_.linear_params_total()) *
                         static_cast<double>(batch) /
                         (LinearPeakFlops() * config_.eff_linear);
  const double weight_sweep = llm_.weight_bytes() / gpu_.hbm_bandwidth;
  return std::max(compute, weight_sweep) + config_.pass_overhead_s / 4.0;
}

}  // namespace prefillonly
