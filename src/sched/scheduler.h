// Request scheduling policies (paper §6, Algorithm 1).
//
// The engine presents its waiting queue as SchedEntry records; the policy
// picks which request runs next. The three policies of Fig. 5:
//
//  * kFifo            — first-come-first-serve (what vLLM does);
//  * kSjfStatic       — shortest-job-first using the JCT estimated once at
//                       ARRIVAL (traditional JCT-aware scheduling);
//  * kSrjfCalibrated  — Algorithm 1: before every decision the engine
//                       refreshes n_cached_now against the live prefix
//                       cache, and the score subtracts lambda * queueing
//                       time for starvation freedom.
//
// The policy only reads entries; refreshing n_cached_now is the engine's
// job (that refresh IS continuous JCT calibration).
//
// Thread contract (ISSUE 2): PickNext and Score are const and touch no
// mutable state, so the scheduler itself needs no locking. The engine's
// concurrent runtime serializes decisions through its single dispatcher —
// one at a time, each over a queue snapshot with entries freshly rebuilt
// against the live cache — so policy semantics are unchanged whether one
// executor or many drain the queue (tests/sched_test.cc,
// EngineSchedulingOrderTest).
#ifndef SRC_SCHED_SCHEDULER_H_
#define SRC_SCHED_SCHEDULER_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "src/sched/jct.h"

namespace prefillonly {

enum class SchedPolicy { kFifo, kSjfStatic, kSrjfCalibrated };

std::string_view SchedPolicyName(SchedPolicy policy);

struct SchedEntry {
  double arrival_time = 0.0;
  int64_t n_input = 0;
  // Prefix-cache hit length captured when the request arrived.
  int64_t n_cached_at_arrival = 0;
  // Hit length against the cache as of *now* (refreshed by the engine
  // before each scheduling decision for kSrjfCalibrated).
  int64_t n_cached_now = 0;
  // Strict scheduling class (ISSUE 5): PickNext always prefers the highest
  // priority present, and applies the policy's score (including the lambda
  // starvation offset) only within that class. Default 0.
  int32_t priority = 0;
  // Deliberate co-batch group (ISSUE 5): requests submitted together by one
  // multi-item API call share a non-zero group id. PickBatch fills lanes
  // with the seed's group-mates FIRST, regardless of their LengthBucket —
  // the caller co-submitted them for one decision, so welding them is
  // deliberate, not the probabilistic latency hazard the bucket rule
  // guards against. 0 = ungrouped.
  int64_t group = 0;
};

// Batch-admission bucket (ISSUE 4): the power-of-two bracket of a request's
// remaining (cache-miss) token count. Requests may share one stacked
// prefill batch only when their miss lengths fall in the same bucket, so a
// batch never welds a short request to a much longer one (the short one
// would inherit the long one's completion time — the latency inflation the
// paper's §6.1 warns about).
int64_t LengthBucket(int64_t n_miss_tokens);

class Scheduler {
 public:
  // `estimator` must outlive the scheduler. `lambda` is the starvation
  // offset in estimator units per second of queueing (paper default 500
  // with the cache-miss-token proxy).
  Scheduler(SchedPolicy policy, double lambda, const JctEstimator* estimator);

  // Index of the entry to run next. Precondition: non-empty queue.
  size_t PickNext(std::span<const SchedEntry> queue, double now) const;

  // Indices of up to `max_batch` entries to run as ONE batched prefill,
  // best first. The seed is exactly PickNext's winner — batching never
  // changes which request wins the scheduling decision, so SRJF aging and
  // the lambda starvation bound are unaffected (a starved long request
  // becomes the seed and rides in its own batch). The remaining slots are
  // filled first with the seed's co-batch group-mates (any bucket, ISSUE 5),
  // then with the best-scored entries from the seed's LengthBucket —
  // highest priority class first, ties FIFO by queue order.
  // Precondition: non-empty queue.
  std::vector<size_t> PickBatch(std::span<const SchedEntry> queue, double now,
                                int max_batch) const;

  // The score used for selection (lower runs first); exposed for tests and
  // for the Fig. 5 walkthrough benchmark.
  double Score(const SchedEntry& entry, double now) const;

  SchedPolicy policy() const { return policy_; }
  double lambda() const { return lambda_; }

 private:
  SchedPolicy policy_;
  double lambda_;
  const JctEstimator* estimator_;
};

}  // namespace prefillonly

#endif  // SRC_SCHED_SCHEDULER_H_
