// Request scheduling policies (paper §6, Algorithm 1).
//
// The engine presents its waiting queue as SchedEntry records; the policy
// picks which request runs next. The three policies of Fig. 5:
//
//  * kFifo            — first-come-first-serve (what vLLM does);
//  * kSjfStatic       — shortest-job-first using the JCT estimated once at
//                       ARRIVAL (traditional JCT-aware scheduling);
//  * kSrjfCalibrated  — Algorithm 1: before every decision the engine
//                       refreshes n_cached_now against the live prefix
//                       cache, and the score subtracts lambda * queueing
//                       time for starvation freedom.
//
// The policy only reads entries; refreshing n_cached_now is the engine's
// job (that refresh IS continuous JCT calibration).
//
// Thread contract (ISSUE 2): PickNext and Score are const and touch no
// mutable state, so the scheduler itself needs no locking. The engine's
// concurrent runtime serializes decisions through its single dispatcher —
// one at a time, each over a queue snapshot with entries freshly rebuilt
// against the live cache — so policy semantics are unchanged whether one
// executor or many drain the queue (tests/sched_test.cc,
// EngineSchedulingOrderTest).
#ifndef SRC_SCHED_SCHEDULER_H_
#define SRC_SCHED_SCHEDULER_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "src/sched/jct.h"

namespace prefillonly {

enum class SchedPolicy { kFifo, kSjfStatic, kSrjfCalibrated };

std::string_view SchedPolicyName(SchedPolicy policy);

// How PickBatch fills the lane behind the seed (ISSUE 9):
//
//  * kFirstFit — budget-aware first-fit decreasing over remaining (miss)
//                lengths: any-length riders are considered longest-first and
//                admitted whenever they fit the remaining activation budget
//                (Prepacking, PAPERS.md). Oversized candidates are SKIPPED,
//                not a reason to stop — a smaller later rider still rides.
//  * kBucket   — the legacy ISSUE 4 gate: riders must share the seed's
//                power-of-two LengthBucket. Kept selectable for bisection
//                and for the latency argument the bucket rule encodes.
enum class BatchPacking { kFirstFit, kBucket };

std::string_view BatchPackingName(BatchPacking packing);

struct SchedEntry {
  double arrival_time = 0.0;
  int64_t n_input = 0;
  // Prefix-cache hit length captured when the request arrived.
  int64_t n_cached_at_arrival = 0;
  // Hit length against the cache as of *now* (refreshed by the engine
  // before each scheduling decision for kSrjfCalibrated).
  int64_t n_cached_now = 0;
  // Strict scheduling class (ISSUE 5): PickNext always prefers the highest
  // priority present, and applies the policy's score (including the lambda
  // starvation offset) only within that class. Default 0.
  int32_t priority = 0;
  // Deliberate co-batch group (ISSUE 5): requests submitted together by one
  // multi-item API call share a non-zero group id. PickBatch fills lanes
  // with the seed's group-mates FIRST, regardless of their length — the
  // caller co-submitted them for one decision, so welding them is
  // deliberate. 0 = ungrouped.
  int64_t group = 0;
};

// Legacy batch-admission bucket (ISSUE 4, now BatchPacking::kBucket): the
// power-of-two bracket of a request's remaining (cache-miss) token count.
// Under the bucket rule requests share one stacked prefill batch only when
// their miss lengths fall in the same bucket, so a batch never welds a
// short request to a much longer one.
int64_t LengthBucket(int64_t n_miss_tokens);

// Per-sequence admission cost model (ISSUE 9). The engine builds this from
// the model config (src/sched/batch_cost.h) so the scheduler can project
// what a candidate batch will charge against the lane's TrackingAllocator
// and admit riders only while the projection fits `budget_bytes`.
//
// The projection must never be optimistic: every byte the stacked prefill
// pass allocates per miss token, per assembled-prefix token, and per
// sequence must be covered, or admission silently converts packed batches
// into batch-OOM solo-fallback retries. The randomized sweep in
// tests/batching_test.cc asserts projected >= actual peak per composition.
struct BatchBudget {
  // Lane activation budget. 0 = unlimited (no admission constraint).
  size_t budget_bytes = 0;
  // Bytes charged per remaining (cache-miss) token of a sequence.
  size_t bytes_per_miss_token = 0;
  // Bytes charged per reused-prefix token (the assembled KV copy).
  size_t bytes_per_cached_token = 0;
  // Fixed bytes charged per admitted sequence (logit staging, slack for
  // allocator minimums).
  size_t bytes_per_sequence = 0;
  // Cache block size in tokens. The engine refreshes n_cached_now as
  // min(match, n_input - 1), but the prefix it can actually assemble is
  // block-aligned — rounding down here keeps the projected miss count
  // conservative (never below what the model will really stack).
  int64_t block_tokens = 0;

  // Reusable prefix tokens after block alignment (what the engine's
  // AcquirePrefix will really assemble), and the resulting stacked rows.
  int64_t CachedTokens(int64_t n_input, int64_t n_cached_now) const;
  int64_t MissTokens(int64_t n_input, int64_t n_cached_now) const;
  // Projected lane bytes for one sequence.
  size_t SequenceBytes(int64_t n_input, int64_t n_cached_now) const;
};

// One batch-formation decision (ISSUE 9): the admitted entries plus the
// admission accounting the engine exports through /v1/stats.
struct BatchPick {
  // Queue indices of the admitted entries, seed first, then riders in
  // admission order.
  std::vector<size_t> picked;
  // Projected lane bytes for the admitted set under the BatchBudget.
  size_t projected_bytes = 0;
  // Admitted remaining (miss) tokens across the set — the lane-occupancy
  // numerator for miss_tokens_per_batch.
  int64_t miss_tokens = 0;
  // Candidates passed over because admitting them would exceed the budget.
  // Each skip leaves the candidate queued for a later decision.
  int64_t budget_skips = 0;
};

class Scheduler {
 public:
  // `estimator` must outlive the scheduler. `lambda` is the starvation
  // offset in estimator units per second of queueing (paper default 500
  // with the cache-miss-token proxy). `packing` selects the PickBatch
  // rider-admission rule (ISSUE 9); the seed choice never depends on it.
  Scheduler(SchedPolicy policy, double lambda, const JctEstimator* estimator,
            BatchPacking packing = BatchPacking::kFirstFit);

  // Index of the entry to run next. Precondition: non-empty queue.
  size_t PickNext(std::span<const SchedEntry> queue, double now) const;

  // Up to `max_batch` entries to run as ONE batched prefill. The seed is
  // exactly PickNext's winner — batching never changes which request wins
  // the scheduling decision, so SRJF aging and the lambda starvation bound
  // are unaffected (a starved long request becomes the seed and is always
  // admitted, even when it alone exceeds the budget — it would be charged
  // the same running solo). The remaining slots fill in two tiers:
  //
  //  1. the seed's co-batch group-mates (ISSUE 5), highest priority class
  //     first then best score, ties FIFO;
  //  2. kFirstFit: every other waiting entry, highest priority class first
  //     then LONGEST remaining length first (first-fit decreasing), ties
  //     FIFO. kBucket: only entries from the seed's LengthBucket, by class
  //     then score.
  //
  // Both tiers charge the BatchBudget cost model; a candidate that does not
  // fit the remaining budget is skipped (counted in budget_skips) and the
  // scan continues — a smaller later candidate can still ride.
  // Precondition: non-empty queue.
  BatchPick PickBatch(std::span<const SchedEntry> queue, double now,
                      int max_batch, const BatchBudget& budget) const;

  // Budget-free convenience overload (unit tests, Fig. 5 walkthrough):
  // unlimited budget, indices only.
  std::vector<size_t> PickBatch(std::span<const SchedEntry> queue, double now,
                                int max_batch) const;

  // The score used for selection (lower runs first); exposed for tests and
  // for the Fig. 5 walkthrough benchmark.
  double Score(const SchedEntry& entry, double now) const;

  SchedPolicy policy() const { return policy_; }
  double lambda() const { return lambda_; }
  BatchPacking packing() const { return packing_; }

 private:
  SchedPolicy policy_;
  double lambda_;
  const JctEstimator* estimator_;
  BatchPacking packing_;
};

}  // namespace prefillonly

#endif  // SRC_SCHED_SCHEDULER_H_
