#include "src/sched/scheduler.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace prefillonly {

int64_t LengthBucket(int64_t n_miss_tokens) {
  const uint64_t len = static_cast<uint64_t>(std::max<int64_t>(n_miss_tokens, 1));
  return static_cast<int64_t>(std::bit_width(len)) - 1;
}

std::string_view SchedPolicyName(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::kFifo:
      return "FIFO";
    case SchedPolicy::kSjfStatic:
      return "SRJF (static)";
    case SchedPolicy::kSrjfCalibrated:
      return "SRJF + continuous JCT calibration";
  }
  return "?";
}

Scheduler::Scheduler(SchedPolicy policy, double lambda, const JctEstimator* estimator)
    : policy_(policy), lambda_(lambda), estimator_(estimator) {
  assert(policy == SchedPolicy::kFifo || estimator != nullptr);
}

double Scheduler::Score(const SchedEntry& entry, double now) const {
  switch (policy_) {
    case SchedPolicy::kFifo:
      return entry.arrival_time;
    case SchedPolicy::kSjfStatic:
      return estimator_->Estimate(entry.n_input, entry.n_cached_at_arrival) -
             lambda_ * (now - entry.arrival_time);
    case SchedPolicy::kSrjfCalibrated:
      // Algorithm 1, line 9: score = jct(n_input, n_cached) - lambda * T_queue.
      return estimator_->Estimate(entry.n_input, entry.n_cached_now) -
             lambda_ * (now - entry.arrival_time);
  }
  return 0.0;
}

std::vector<size_t> Scheduler::PickBatch(std::span<const SchedEntry> queue,
                                         double now, int max_batch) const {
  assert(!queue.empty());
  std::vector<size_t> picked;
  const size_t seed = PickNext(queue, now);
  picked.push_back(seed);
  if (max_batch <= 1 || queue.size() <= 1) {
    return picked;
  }
  const auto miss = [](const SchedEntry& e) { return e.n_input - e.n_cached_now; };
  const int64_t seed_bucket = LengthBucket(miss(queue[seed]));
  const int64_t seed_group = queue[seed].group;
  // Two rider tiers (ISSUE 5): the seed's co-batch group-mates ride first,
  // exempt from the bucket rule — their caller submitted them as one
  // multi-item decision, so co-scheduling them is the deliberate outcome
  // the API promises. Everyone else still needs the seed's LengthBucket.
  std::vector<std::pair<double, size_t>> mates;
  std::vector<std::pair<double, size_t>> rest;
  for (size_t i = 0; i < queue.size(); ++i) {
    if (i == seed) {
      continue;
    }
    if (seed_group != 0 && queue[i].group == seed_group) {
      mates.emplace_back(Score(queue[i], now), i);
    } else if (LengthBucket(miss(queue[i])) == seed_bucket) {
      rest.emplace_back(Score(queue[i], now), i);
    }
  }
  // stable_sort keeps ties FIFO (queues are arrival-ordered); the priority
  // class dominates the score, mirroring PickNext.
  const auto by_class_then_score = [&queue](const auto& a, const auto& b) {
    if (queue[a.second].priority != queue[b.second].priority) {
      return queue[a.second].priority > queue[b.second].priority;
    }
    return a.first < b.first;
  };
  std::stable_sort(mates.begin(), mates.end(), by_class_then_score);
  std::stable_sort(rest.begin(), rest.end(), by_class_then_score);
  for (const auto* tier : {&mates, &rest}) {
    for (const auto& [score, index] : *tier) {
      if (picked.size() >= static_cast<size_t>(max_batch)) {
        return picked;
      }
      picked.push_back(index);
    }
  }
  return picked;
}

size_t Scheduler::PickNext(std::span<const SchedEntry> queue, double now) const {
  assert(!queue.empty());
  size_t best = 0;
  double best_score = Score(queue[0], now);
  for (size_t i = 1; i < queue.size(); ++i) {
    // The priority class is strict (ISSUE 5): a higher class always wins;
    // the policy score only decides within a class. Strict comparisons keep
    // ties FIFO by queue order (queues are arrival-ordered).
    if (queue[i].priority < queue[best].priority) {
      continue;
    }
    const double score = Score(queue[i], now);
    if (queue[i].priority > queue[best].priority || score < best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

}  // namespace prefillonly
