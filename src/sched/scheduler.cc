#include "src/sched/scheduler.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace prefillonly {

int64_t LengthBucket(int64_t n_miss_tokens) {
  const uint64_t len = static_cast<uint64_t>(std::max<int64_t>(n_miss_tokens, 1));
  return static_cast<int64_t>(std::bit_width(len)) - 1;
}

std::string_view SchedPolicyName(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::kFifo:
      return "FIFO";
    case SchedPolicy::kSjfStatic:
      return "SRJF (static)";
    case SchedPolicy::kSrjfCalibrated:
      return "SRJF + continuous JCT calibration";
  }
  return "?";
}

Scheduler::Scheduler(SchedPolicy policy, double lambda, const JctEstimator* estimator)
    : policy_(policy), lambda_(lambda), estimator_(estimator) {
  assert(policy == SchedPolicy::kFifo || estimator != nullptr);
}

double Scheduler::Score(const SchedEntry& entry, double now) const {
  switch (policy_) {
    case SchedPolicy::kFifo:
      return entry.arrival_time;
    case SchedPolicy::kSjfStatic:
      return estimator_->Estimate(entry.n_input, entry.n_cached_at_arrival) -
             lambda_ * (now - entry.arrival_time);
    case SchedPolicy::kSrjfCalibrated:
      // Algorithm 1, line 9: score = jct(n_input, n_cached) - lambda * T_queue.
      return estimator_->Estimate(entry.n_input, entry.n_cached_now) -
             lambda_ * (now - entry.arrival_time);
  }
  return 0.0;
}

std::vector<size_t> Scheduler::PickBatch(std::span<const SchedEntry> queue,
                                         double now, int max_batch) const {
  assert(!queue.empty());
  std::vector<size_t> picked;
  const size_t seed = PickNext(queue, now);
  picked.push_back(seed);
  if (max_batch <= 1 || queue.size() <= 1) {
    return picked;
  }
  const auto miss = [](const SchedEntry& e) { return e.n_input - e.n_cached_now; };
  const int64_t seed_bucket = LengthBucket(miss(queue[seed]));
  std::vector<std::pair<double, size_t>> rest;
  for (size_t i = 0; i < queue.size(); ++i) {
    if (i != seed && LengthBucket(miss(queue[i])) == seed_bucket) {
      rest.emplace_back(Score(queue[i], now), i);
    }
  }
  // stable_sort on score alone keeps ties FIFO (queues are arrival-ordered).
  std::stable_sort(rest.begin(), rest.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  const size_t fill = std::min(rest.size(), static_cast<size_t>(max_batch - 1));
  for (size_t i = 0; i < fill; ++i) {
    picked.push_back(rest[i].second);
  }
  return picked;
}

size_t Scheduler::PickNext(std::span<const SchedEntry> queue, double now) const {
  assert(!queue.empty());
  size_t best = 0;
  double best_score = Score(queue[0], now);
  for (size_t i = 1; i < queue.size(); ++i) {
    const double score = Score(queue[i], now);
    // Strict < keeps ties FIFO by queue order (queues are arrival-ordered).
    if (score < best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

}  // namespace prefillonly
