#include "src/sched/scheduler.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace prefillonly {

int64_t LengthBucket(int64_t n_miss_tokens) {
  const uint64_t len = static_cast<uint64_t>(std::max<int64_t>(n_miss_tokens, 1));
  return static_cast<int64_t>(std::bit_width(len)) - 1;
}

std::string_view SchedPolicyName(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::kFifo:
      return "FIFO";
    case SchedPolicy::kSjfStatic:
      return "SRJF (static)";
    case SchedPolicy::kSrjfCalibrated:
      return "SRJF + continuous JCT calibration";
  }
  return "?";
}

std::string_view BatchPackingName(BatchPacking packing) {
  switch (packing) {
    case BatchPacking::kFirstFit:
      return "first-fit decreasing";
    case BatchPacking::kBucket:
      return "length bucket";
  }
  return "?";
}

int64_t BatchBudget::CachedTokens(int64_t n_input, int64_t n_cached_now) const {
  int64_t cached =
      std::clamp<int64_t>(n_cached_now, 0, std::max<int64_t>(n_input - 1, 0));
  if (block_tokens > 0) {
    cached -= cached % block_tokens;
  }
  return cached;
}

int64_t BatchBudget::MissTokens(int64_t n_input, int64_t n_cached_now) const {
  // Even a fully-cached request stacks at least one row (the engine clamps
  // reuse to n_input - 1 so the final token is always recomputed).
  return std::max<int64_t>(n_input - CachedTokens(n_input, n_cached_now), 1);
}

size_t BatchBudget::SequenceBytes(int64_t n_input, int64_t n_cached_now) const {
  const int64_t cached = CachedTokens(n_input, n_cached_now);
  const int64_t miss = MissTokens(n_input, n_cached_now);
  return static_cast<size_t>(miss) * bytes_per_miss_token +
         static_cast<size_t>(cached) * bytes_per_cached_token +
         bytes_per_sequence;
}

Scheduler::Scheduler(SchedPolicy policy, double lambda,
                     const JctEstimator* estimator, BatchPacking packing)
    : policy_(policy), lambda_(lambda), estimator_(estimator), packing_(packing) {
  assert(policy == SchedPolicy::kFifo || estimator != nullptr);
}

double Scheduler::Score(const SchedEntry& entry, double now) const {
  switch (policy_) {
    case SchedPolicy::kFifo:
      return entry.arrival_time;
    case SchedPolicy::kSjfStatic:
      return estimator_->Estimate(entry.n_input, entry.n_cached_at_arrival) -
             lambda_ * (now - entry.arrival_time);
    case SchedPolicy::kSrjfCalibrated:
      // Algorithm 1, line 9: score = jct(n_input, n_cached) - lambda * T_queue.
      return estimator_->Estimate(entry.n_input, entry.n_cached_now) -
             lambda_ * (now - entry.arrival_time);
  }
  return 0.0;
}

BatchPick Scheduler::PickBatch(std::span<const SchedEntry> queue, double now,
                               int max_batch, const BatchBudget& budget) const {
  assert(!queue.empty());
  BatchPick pick;
  const size_t seed = PickNext(queue, now);
  // The seed is always admitted — running it solo would charge the lane the
  // same bytes, so rejecting it on budget grounds could only stall the queue.
  pick.picked.push_back(seed);
  pick.projected_bytes =
      budget.SequenceBytes(queue[seed].n_input, queue[seed].n_cached_now);
  pick.miss_tokens =
      budget.MissTokens(queue[seed].n_input, queue[seed].n_cached_now);
  if (max_batch <= 1 || queue.size() <= 1) {
    return pick;
  }
  const auto miss = [](const SchedEntry& e) { return e.n_input - e.n_cached_now; };
  const int64_t seed_bucket = LengthBucket(miss(queue[seed]));
  const int64_t seed_group = queue[seed].group;
  // Two rider tiers: the seed's co-batch group-mates ride first (ISSUE 5),
  // exempt from any length rule — their caller submitted them as one
  // multi-item decision, so co-scheduling them is the deliberate outcome
  // the API promises. The second tier depends on the packing mode:
  // kFirstFit considers EVERY other entry, longest remaining length first
  // (first-fit decreasing packs tightest when big items go in early);
  // kBucket keeps the legacy same-LengthBucket gate in score order.
  // Both tiers still charge the budget below.
  std::vector<std::pair<double, size_t>> mates;
  std::vector<std::pair<double, size_t>> rest;
  for (size_t i = 0; i < queue.size(); ++i) {
    if (i == seed) {
      continue;
    }
    if (seed_group != 0 && queue[i].group == seed_group) {
      mates.emplace_back(Score(queue[i], now), i);
    } else if (packing_ == BatchPacking::kFirstFit) {
      rest.emplace_back(-static_cast<double>(miss(queue[i])), i);
    } else if (LengthBucket(miss(queue[i])) == seed_bucket) {
      rest.emplace_back(Score(queue[i], now), i);
    }
  }
  // stable_sort keeps ties FIFO (queues are arrival-ordered); the priority
  // class dominates the sort key, mirroring PickNext. For kFirstFit the key
  // is the negated miss length, so within a class longer candidates sort
  // first — starvation is unaffected because classes still dominate and the
  // seed choice already happened.
  const auto by_class_then_key = [&queue](const auto& a, const auto& b) {
    if (queue[a.second].priority != queue[b.second].priority) {
      return queue[a.second].priority > queue[b.second].priority;
    }
    return a.first < b.first;
  };
  std::stable_sort(mates.begin(), mates.end(), by_class_then_key);
  std::stable_sort(rest.begin(), rest.end(), by_class_then_key);
  const bool limited = budget.budget_bytes > 0;
  for (const auto* tier : {&mates, &rest}) {
    for (const auto& [key, index] : *tier) {
      if (pick.picked.size() >= static_cast<size_t>(max_batch)) {
        return pick;
      }
      const SchedEntry& entry = queue[index];
      const size_t cost = budget.SequenceBytes(entry.n_input, entry.n_cached_now);
      if (limited && pick.projected_bytes + cost > budget.budget_bytes) {
        // Skip, don't break (the ISSUE 9 bugfix): an oversized candidate
        // stays queued for a later decision while smaller ones still ride.
        ++pick.budget_skips;
        continue;
      }
      pick.projected_bytes += cost;
      pick.miss_tokens += budget.MissTokens(entry.n_input, entry.n_cached_now);
      pick.picked.push_back(index);
    }
  }
  return pick;
}

std::vector<size_t> Scheduler::PickBatch(std::span<const SchedEntry> queue,
                                         double now, int max_batch) const {
  return PickBatch(queue, now, max_batch, BatchBudget{}).picked;
}

size_t Scheduler::PickNext(std::span<const SchedEntry> queue, double now) const {
  assert(!queue.empty());
  size_t best = 0;
  double best_score = Score(queue[0], now);
  for (size_t i = 1; i < queue.size(); ++i) {
    // The priority class is strict (ISSUE 5): a higher class always wins;
    // the policy score only decides within a class. Strict comparisons keep
    // ties FIFO by queue order (queues are arrival-ordered).
    if (queue[i].priority < queue[best].priority) {
      continue;
    }
    const double score = Score(queue[i], now);
    if (queue[i].priority > queue[best].priority || score < best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

}  // namespace prefillonly
