#include "src/sched/scheduler.h"

#include <cassert>

namespace prefillonly {

std::string_view SchedPolicyName(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::kFifo:
      return "FIFO";
    case SchedPolicy::kSjfStatic:
      return "SRJF (static)";
    case SchedPolicy::kSrjfCalibrated:
      return "SRJF + continuous JCT calibration";
  }
  return "?";
}

Scheduler::Scheduler(SchedPolicy policy, double lambda, const JctEstimator* estimator)
    : policy_(policy), lambda_(lambda), estimator_(estimator) {
  assert(policy == SchedPolicy::kFifo || estimator != nullptr);
}

double Scheduler::Score(const SchedEntry& entry, double now) const {
  switch (policy_) {
    case SchedPolicy::kFifo:
      return entry.arrival_time;
    case SchedPolicy::kSjfStatic:
      return estimator_->Estimate(entry.n_input, entry.n_cached_at_arrival) -
             lambda_ * (now - entry.arrival_time);
    case SchedPolicy::kSrjfCalibrated:
      // Algorithm 1, line 9: score = jct(n_input, n_cached) - lambda * T_queue.
      return estimator_->Estimate(entry.n_input, entry.n_cached_now) -
             lambda_ * (now - entry.arrival_time);
  }
  return 0.0;
}

size_t Scheduler::PickNext(std::span<const SchedEntry> queue, double now) const {
  assert(!queue.empty());
  size_t best = 0;
  double best_score = Score(queue[0], now);
  for (size_t i = 1; i < queue.size(); ++i) {
    const double score = Score(queue[i], now);
    // Strict < keeps ties FIFO by queue order (queues are arrival-ordered).
    if (score < best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

}  // namespace prefillonly
