#include "src/sched/jct.h"

#include <algorithm>
#include <vector>

namespace prefillonly {

Result<ProfiledJctEstimator> ProfiledJctEstimator::Profile(
    const std::function<double(int64_t, int64_t)>& measure, int64_t max_input_len,
    int64_t granularity) {
  if (max_input_len < granularity || granularity <= 0) {
    return Status::InvalidArgument("profile grid needs max_input_len >= granularity > 0");
  }
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int64_t n_input = granularity; n_input <= max_input_len; n_input += granularity) {
    for (int64_t n_cached = 0; n_cached < n_input; n_cached += granularity) {
      rows.push_back({static_cast<double>(n_input), static_cast<double>(n_cached)});
      y.push_back(measure(n_input, n_cached));
    }
  }
  auto fit = FitLinear(rows, y);
  if (!fit.ok()) {
    return fit.status();
  }
  const double r2 = RSquared(fit.value(), rows, y);
  return ProfiledJctEstimator(fit.take(), r2);
}

double ProfiledJctEstimator::Estimate(int64_t n_input, int64_t n_cached) const {
  return model_.Predict({static_cast<double>(n_input), static_cast<double>(n_cached)});
}

}  // namespace prefillonly
