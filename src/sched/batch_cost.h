// Batch-admission cost model (ISSUE 9).
//
// Builds the BatchBudget the scheduler charges when packing a stacked
// prefill batch. The per-token and per-sequence rates are derived from the
// arena allocations LlamaModel::PrefillBatch actually makes (src/model/
// llama.cc), mode by mode, and are deliberately CONSERVATIVE: the
// projection must upper-bound the lane's TrackingAllocator peak for every
// composition, or admission would pack batches that only "fit" on paper and
// then burn the work in batch-OOM solo-fallback retries. The randomized
// sweep in tests/batching_test.cc asserts projected >= actual peak.
//
// This lived as two file-private helpers in src/core/engine.cc before
// ISSUE 9; it moved here so the scheduler owns admission end to end and the
// engine's PickBatchIds collapses to id mapping.
#ifndef SRC_SCHED_BATCH_COST_H_
#define SRC_SCHED_BATCH_COST_H_

#include <cstddef>
#include <cstdint>

#include "src/model/config.h"
#include "src/model/llama.h"
#include "src/sched/scheduler.h"

namespace prefillonly {

// Cost model for one executor lane running `mode` prefills of `model`.
// `activation_budget_bytes` is the lane's hard TrackingAllocator cap (0 =
// unlimited); `block_tokens` is the prefix-cache block size used to round
// projected reuse down to what AcquirePrefix can really assemble.
BatchBudget MakeBatchBudget(const ModelConfig& model, PrefillMode mode,
                            size_t activation_budget_bytes,
                            int64_t block_tokens);

}  // namespace prefillonly

#endif  // SRC_SCHED_BATCH_COST_H_
