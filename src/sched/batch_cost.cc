#include "src/sched/batch_cost.h"

#include <algorithm>

namespace prefillonly {
namespace {

// Worst simultaneous pair of per-row linear-layer transients inside one
// decoder layer of the standard stacked pass (src/model/llama.cc,
// PrefillBatchStandard): normed+q, q+attn_out, attn_proj, normed2+gate_up,
// gate_up+mlp_act, mlp_act+down. Taking the max over the pairs (instead of
// hard-coding the Llama-ratio winner 3*intermediate) keeps the bound valid
// for user configs with unusual width ratios.
int64_t WorstLayerTransientFloats(const ModelConfig& model) {
  const int64_t h = model.hidden_size;
  const int64_t qs = model.q_size();
  const int64_t inter = model.intermediate_size;
  return std::max({h + qs, 2 * qs, h + 2 * inter, 3 * inter, inter + h});
}

}  // namespace

BatchBudget MakeBatchBudget(const ModelConfig& model, PrefillMode mode,
                            size_t activation_budget_bytes,
                            int64_t block_tokens) {
  const int64_t h = model.hidden_size;
  const int64_t qs = model.q_size();
  const int64_t kvw = model.kv_size();
  const int64_t inter = model.intermediate_size;
  // K+V floats per token across all layers — both the stacked pass_kv the
  // forward keeps resident and the retained slices carved out for the
  // prefix cache at the end of the pass are this size.
  const int64_t retained_kv = 2 * kvw * model.n_layers;
  int64_t miss_floats = 0;
  if (mode == PrefillMode::kHybrid) {
    // Hybrid keeps per-row buffers resident for the whole pass: hidden +
    // normed + (proj_buf when not updating in place) + q + attn_out +
    // single-layer k/v staging + the retained KV allocated up front. The
    // chunked-linear MLP working set (gate_up + activation) is sized
    // min(chunk, rows) * 3 * inter; charging it per row upper-bounds it.
    miss_floats = 3 * h + 2 * qs + 2 * kvw + retained_kv + 3 * inter;
  } else {
    // Standard / chunked: hidden + the all-layer stacked pass_kv (resident
    // for the whole pass) + the retained slices that coexist with it at the
    // end + the worst per-layer transient pair.
    miss_floats = h + 2 * retained_kv + WorstLayerTransientFloats(model);
  }
  BatchBudget budget;
  budget.budget_bytes = activation_budget_bytes;
  // +sizeof(float) on both token rates covers the attention score row,
  // which spans the full (cached + new) context of the longest sequence.
  budget.bytes_per_miss_token =
      static_cast<size_t>(miss_floats) * sizeof(float) + sizeof(float);
  budget.bytes_per_cached_token =
      static_cast<size_t>(retained_kv) * sizeof(float) + sizeof(float);
  // Per-sequence constant: the last-logits staging row (vocab floats) plus
  // slack for the allocator's minimum-charge granularity on tiny tensors.
  budget.bytes_per_sequence =
      static_cast<size_t>(model.vocab_size) * sizeof(float) + 256;
  budget.block_tokens = block_tokens;
  return budget;
}

}  // namespace prefillonly
