// Job-completion-time estimation for prefill-only requests (§6.3).
//
// Because a prefill-only request emits exactly one token, its JCT is a
// deterministic function of (n_input, n_cached). The paper offers two
// estimators:
//
//  * ProfiledJctEstimator — profile jct(n_input, n_cached) on a grid with
//    1000-token granularity and fit a linear model by least squares;
//  * CacheMissProxyEstimator — score by n_input - n_cached alone, which the
//    paper measured to correlate with true JCT at Pearson r = 0.987 and
//    uses by default.
//
// Estimator scores only need to *order* requests, so their unit (seconds
// vs. tokens) is irrelevant to the scheduler as long as the starvation
// offset lambda is expressed in the same unit per second of waiting.
#ifndef SRC_SCHED_JCT_H_
#define SRC_SCHED_JCT_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "src/common/status.h"
#include "src/metrics/regression.h"

namespace prefillonly {

class JctEstimator {
 public:
  virtual ~JctEstimator() = default;
  virtual double Estimate(int64_t n_input, int64_t n_cached) const = 0;
};

// jct ~ a*(n_input) + b*(n_cached) + c, fitted over a profiled grid.
class ProfiledJctEstimator : public JctEstimator {
 public:
  // `measure` returns the observed JCT for a (n_input, n_cached) pair —
  // a real timed run for the CPU engine, the cost model for the simulator.
  // The grid covers n_input in [granularity, max_input_len] and n_cached in
  // [0, n_input) at the same granularity (paper: 1000 tokens).
  static Result<ProfiledJctEstimator> Profile(
      const std::function<double(int64_t, int64_t)>& measure, int64_t max_input_len,
      int64_t granularity = 1000);

  double Estimate(int64_t n_input, int64_t n_cached) const override;

  const LinearModel& model() const { return model_; }
  double r_squared() const { return r_squared_; }

 private:
  explicit ProfiledJctEstimator(LinearModel model, double r_squared)
      : model_(std::move(model)), r_squared_(r_squared) {}

  LinearModel model_;
  double r_squared_ = 0.0;
};

// The paper's default: JCT proxy = number of cache-miss tokens.
class CacheMissProxyEstimator : public JctEstimator {
 public:
  double Estimate(int64_t n_input, int64_t n_cached) const override {
    return static_cast<double>(n_input - n_cached);
  }
};

}  // namespace prefillonly

#endif  // SRC_SCHED_JCT_H_
