// Fault-tolerant multi-replica serving (ISSUE 8; docs/CLUSTER.md).
//
// A ReplicaSet runs N in-process Engine replicas behind one submission API —
// the paper's §7.1 deployment shape (one non-parallelized engine per device
// behind a sticky router), grown a robustness layer:
//
//   * PREFIX-AFFINITY ROUTING: requests route by consistent hashing on the
//     first cache block's tokens (AffinityRouter), so each replica's radix
//     PrefixCache concentrates hits instead of diluting them N ways;
//   * LOAD-AWARE SPILL: when the affinity target's outstanding depth exceeds
//     the least-loaded eligible replica by more than `spill_margin`, the
//     candidate order re-sorts by load — stickiness is a preference, not a
//     hot-spot guarantee;
//   * PER-REPLICA CIRCUIT BREAKER: closed → open after
//     `breaker_trip_failures` consecutive strikes (failed hand-offs, engine
//     overload shed, kInternal completions, health-probe faults) → half-open
//     after `breaker_open_ms`, when exactly one affinity-routed request is
//     admitted as the probe — success closes the breaker, failure reopens it;
//   * TRANSPARENT FAILOVER, AT-MOST-ONCE: when a breaker trips, work that is
//     still QUEUED on that replica is withdrawn via Engine::CancelIfQueued
//     and re-submitted to the next candidate. Work already dispatched is
//     never touched — it finishes (or fails) where it runs, so no request
//     can ever execute twice;
//   * DRAINING: Drain(i) stops admitting to a replica while everything
//     queued or in flight there finishes; Rejoin(i) restores it (and resets
//     its breaker);
//   * AGGREGATION: Health() and Stats() answer for the whole set with
//     per-replica breakdowns, the /v1/health and /v1/stats payloads.
//
// Failure is a reproducible input here like everywhere else: the hand-off
// path fires the `replica.submit` / `replica.stall` fault sites and the
// health monitor fires `replica.health` (src/common/fault.h), so every
// breaker transition and failover is deterministically testable.
//
// Lock order: set mu_ may be taken before any engine's internal locks (the
// snapshot/stats paths call into engines under mu_), never the reverse —
// engines call back (the per-item completion hook) with no engine locks
// held. The hook, Resubmit and the failover cancels all run with mu_
// RELEASED, so completion can re-enter submission freely.
#ifndef SRC_CLUSTER_REPLICA_SET_H_
#define SRC_CLUSTER_REPLICA_SET_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/cluster/affinity_router.h"
#include "src/core/engine.h"

namespace prefillonly {

struct ReplicaSetOptions {
  // Replica count; every replica is constructed from the SAME EngineOptions
  // (same weight_seed), so all replicas score bitwise identically — which is
  // what makes failover invisible to clients.
  int n_replicas = 1;
  EngineOptions engine;

  // Ring smoothness (AffinityRouter vnodes per replica).
  int vnodes_per_replica = 64;
  // Load-aware spill: stay sticky while the affinity target's outstanding
  // depth is within this margin of the least-loaded eligible replica.
  int64_t spill_margin = 4;

  // Circuit breaker: consecutive strikes to open, and how long open lasts
  // before a half-open probe is allowed.
  int breaker_trip_failures = 3;
  int64_t breaker_open_ms = 250;

  // Health monitor: poll period (0 disables the thread; lazy open→half-open
  // transitions still happen on the submission path) and how many
  // consecutive failed probes (fired `replica.health` faults) trip a
  // closed breaker.
  int64_t health_poll_ms = 20;
  int health_trip_failures = 3;

  // Failover of queued-but-unstarted work when a breaker trips, and how many
  // times one request may be moved before it is failed with kUnavailable.
  bool failover_queued = true;
  int max_failovers_per_request = 2;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };
std::string_view BreakerStateName(BreakerState state);

// Router-level counters for one replica (the engine keeps its own
// EngineStats; these count what the ReplicaSet did AROUND the engine).
struct ReplicaCounters {
  int64_t routed_affinity = 0;   // requests admitted here as the primary
  int64_t routed_spill = 0;      // admitted here by load spill or fallback
  int64_t admit_failures = 0;    // failed hand-offs (injected/shed) observed
  int64_t breaker_trips = 0;     // closed→open transitions (reopens included)
  int64_t half_open_probes = 0;  // probe requests admitted while half-open
  int64_t failed_over_out = 0;   // queued requests withdrawn from here
  int64_t failed_over_in = 0;    // requests that landed here by failover
};

struct ReplicaSnapshot {
  int index = 0;
  BreakerState breaker = BreakerState::kClosed;
  // True iff this replica would take new work right now (breaker admits,
  // not draining, engine not overloaded) — the same predicate Health()
  // counts, so sum(admitting) == 0 exactly when Health() is kOverloaded.
  bool admitting = true;
  bool draining = false;
  bool drained = false;  // draining and nothing left queued or in flight
  int64_t outstanding = 0;
  Engine::HealthStatus engine_health = Engine::HealthStatus::kOk;
  ReplicaCounters counters;
  EngineStats engine;
};

struct ClusterCounters {
  int64_t routed_affinity = 0;
  int64_t routed_spill = 0;
  int64_t failovers = 0;  // queued re-submits actually executed
  int64_t breaker_trips = 0;
  int64_t half_open_probes = 0;
  int64_t unavailable_rejections = 0;  // submissions no replica would take
};

struct ClusterStats {
  // EngineStats summed across replicas (peaks are maxed, not summed;
  // faults_injected is the process-global injector count, taken once).
  EngineStats totals;
  ClusterCounters cluster;
  std::vector<ReplicaSnapshot> replicas;
};

class ReplicaSet {
 public:
  explicit ReplicaSet(ReplicaSetOptions options);
  ~ReplicaSet();

  ReplicaSet(const ReplicaSet&) = delete;
  ReplicaSet& operator=(const ReplicaSet&) = delete;

  int n_replicas() const { return static_cast<int>(engines_.size()); }
  Engine& engine(int index) { return *engines_[static_cast<size_t>(index)]; }
  const ReplicaSetOptions& options() const { return options_; }

  // One admitted item: the CLUSTER id (stable across failover re-submits —
  // engine ids are an implementation detail that changes when a request
  // moves) and a future fulfilled exactly once with the terminal result.
  struct Submission {
    int64_t id = -1;
    Engine::ResponseFuture future;
  };

  // Routes and admits a group atomically on ONE replica (groups are
  // co-scheduled batch candidates, so they must not be split). Transient
  // per-replica failures (injected hand-off faults, overload shed, a
  // draining race) advance to the next candidate; if every candidate
  // refuses, the last transient status is returned (kResourceExhausted when
  // the cluster is genuinely saturated, kUnavailable when hand-offs failed).
  // Validation errors return immediately without consuming candidates.
  Result<std::vector<Submission>> SubmitGroup(std::vector<ScoringRequest> requests);
  Result<Submission> Submit(ScoringRequest request);
  // Submit + wait: the blocking convenience the facade's Score uses.
  Result<ScoringResponse> Score(ScoringRequest request);

  // Cancels by cluster id with Engine::Cancel semantics (queued → withdrawn,
  // in flight → mark-and-ignore, finished/unknown → kNotFound). A request
  // cancelled mid-failover is not re-submitted.
  Status Cancel(int64_t id);
  Engine::RequestPhase Phase(int64_t id) const;

  // --- Administration ---------------------------------------------------
  // Stop admitting to replica `index`; queued and in-flight work there
  // finishes normally (drained once outstanding hits zero). Idempotent.
  Status Drain(int index);
  // Resume admitting: clears draining AND resets the breaker to closed.
  Status Rejoin(int index);
  // Operator/bench kill switch: trip the breaker now (failing over queued
  // work), as if `reason` had struck it breaker_trip_failures times.
  Status Trip(int index, const std::string& reason);

  // Cluster health, the /v1/health answer: kOverloaded when NO replica is
  // admitting work (every breaker open/probing, draining, or engine
  // overloaded) — the 503 + Retry-After shape; kDegraded when any replica
  // is impaired but at least one still admits; kOk otherwise.
  Engine::HealthStatus Health() const;

  ClusterStats Stats() const;
  std::vector<ReplicaSnapshot> Replicas() const;

 private:
  struct Record {
    int64_t cluster_id = -1;
    ScoringRequest request;  // kept for failover re-submit
    std::shared_ptr<std::promise<Result<ScoringResponse>>> promise;
    int replica = -1;
    int64_t engine_id = -1;
    int failovers = 0;
    // Bumped at every hand-off attempt; guards the post-admit engine-id
    // write against a completion that already moved the record on.
    int attempt = 0;
    bool failing_over = false;       // withdrawal in progress; re-submit on kCancelled
    bool cancelled_by_client = false;
    bool is_probe = false;           // half-open probe; completion moves the breaker
  };

  struct ReplicaState {
    BreakerState breaker = BreakerState::kClosed;
    double open_until_s = 0.0;
    int consecutive_failures = 0;
    int health_fault_streak = 0;
    bool probe_in_flight = false;
    bool draining = false;
    int64_t outstanding = 0;  // admitted here, not yet completed
    ReplicaCounters counters;
  };

  // A withdrawal planned under mu_ and executed without it; replica and
  // engine_id are captured at plan time (Complete may move the record).
  struct FailoverItem {
    std::shared_ptr<Record> record;
    int replica = -1;
    int64_t engine_id = -1;
  };

  double NowSeconds() const;
  bool AdmittingLocked(int r) const;
  void LazyTransitionsLocked(double now);
  // Candidate replicas in try-order for `key`: ring order, ineligible
  // replicas dropped, load-spill re-sort applied, engine-overloaded
  // replicas deferred to the back (still tried, so single-replica shed
  // propagates honestly as 429).
  std::vector<int> CandidateOrderLocked(uint64_t key, double now);
  // A strike against r; trips the breaker (collecting failover work) after
  // breaker_trip_failures consecutive ones.
  void StrikeLocked(int r, std::vector<FailoverItem>& out);
  void TripLocked(int r, std::vector<FailoverItem>& out);
  void CollectFailoverLocked(int r, std::vector<FailoverItem>& out);
  // Withdraw each item via CancelIfQueued; each success synchronously runs
  // the completion hook, which re-submits. Never called with mu_ held.
  void ExecuteFailover(std::vector<FailoverItem> items);

  // Routes `records` (all or nothing, one replica) and fills engine ids.
  // `hook` is the per-item completion callback bound to `records`;
  // `failover` marks a re-submit (counted as failed_over_in, never as
  // affinity-routed).
  Status RouteRecords(const std::vector<std::shared_ptr<Record>>& records,
                      const Engine::GroupCallback& hook, bool failover);
  // Terminal delivery for one record (runs on whatever thread finalized it).
  void Complete(const std::shared_ptr<Record>& record,
                const Result<ScoringResponse>& result);
  void Resubmit(const std::shared_ptr<Record>& record);
  void MonitorLoop();

  ReplicaSetOptions options_;
  AffinityRouter router_;

  mutable std::mutex mu_;
  std::vector<ReplicaState> states_;
  std::unordered_map<int64_t, std::shared_ptr<Record>> live_;
  int64_t next_cluster_id_ = 1;
  ClusterCounters cluster_;
  bool monitor_stop_ = false;
  std::condition_variable monitor_cv_;
  std::thread monitor_;

  // Declared last: engines stop in ~ReplicaSet while every member above is
  // still alive (their drain runs completion hooks that touch mu_/live_).
  std::vector<std::unique_ptr<Engine>> engines_;
};

}  // namespace prefillonly

#endif  // SRC_CLUSTER_REPLICA_SET_H_
