// Prefix-affinity routing across engine replicas (paper §7.1 "Routing";
// ISSUE 8).
//
// Non-parallelized engines run one instance per device, so the front router
// decides which replica's PrefixCache a request's profile prefix warms. The
// paper's deployment keys stickiness on the user; here the key is the FIRST
// CACHE BLOCK's tokens — the exact unit the radix PrefixCache shares on — so
// any two requests that could share cached KV land on the same replica
// without the router knowing anything about users.
//
// The map is a consistent-hash ring with virtual nodes: each replica owns
// `vnodes` pseudo-random points on a 64-bit circle, and a key routes to the
// first replica point at or after it. Two properties matter for serving:
//   * determinism — the ring depends only on (n_replicas, vnodes), never on
//     traffic, so every router instance in every process agrees;
//   * minimal disruption — removing a replica from consideration (tripped
//     breaker, draining) only moves the keys that replica owned; everyone
//     else's cache affinity is untouched. That is what makes the breaker's
//     failover cheap: N-1 replicas keep their hit rates.
//
// PreferenceOrder() exposes the full ring walk (each replica once, in the
// order their points are encountered), which doubles as the deterministic
// failover order: the ReplicaSet tries candidates in this order, skipping
// ineligible ones, so a key's backup replica is as stable as its primary.
#ifndef SRC_CLUSTER_AFFINITY_ROUTER_H_
#define SRC_CLUSTER_AFFINITY_ROUTER_H_

#include <cstdint>
#include <span>
#include <vector>

namespace prefillonly {

// Affinity key for a prompt: the chain hash of its first cache block, the
// same value PrefixCache keys that block under (so the router and the cache
// agree about what "shareable" means). Prompts shorter than one block hash
// whatever tokens they have — they can never share blocks anyway, so all
// that matters is that the key is deterministic and well spread.
uint64_t AffinityKey(std::span<const int32_t> tokens, int block_size);

class AffinityRouter {
 public:
  // n_replicas >= 1; vnodes_per_replica >= 1 (more vnodes = smoother load
  // split between replicas, at O(n * vnodes) ring memory).
  AffinityRouter(int n_replicas, int vnodes_per_replica = 64);

  // The replica that owns `key`.
  int Primary(uint64_t key) const;

  // Every replica exactly once, in ring-walk order starting at `key`'s
  // successor point. Element 0 is Primary(key); the rest is the failover
  // order.
  std::vector<int> PreferenceOrder(uint64_t key) const;

  int n_replicas() const { return n_replicas_; }

 private:
  struct Point {
    uint64_t hash;
    int replica;
  };

  int n_replicas_;
  std::vector<Point> ring_;  // sorted by hash
};

}  // namespace prefillonly

#endif  // SRC_CLUSTER_AFFINITY_ROUTER_H_
