#include "src/cluster/replica_set.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "src/common/fault.h"
#include "src/common/logging.h"

namespace prefillonly {

std::string_view BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "?";
}

ReplicaSet::ReplicaSet(ReplicaSetOptions options)
    : options_(std::move(options)),
      router_(std::max(1, options_.n_replicas), options_.vnodes_per_replica) {
  options_.n_replicas = std::max(1, options_.n_replicas);
  states_.resize(static_cast<size_t>(options_.n_replicas));
  engines_.reserve(static_cast<size_t>(options_.n_replicas));
  for (int i = 0; i < options_.n_replicas; ++i) {
    engines_.push_back(std::make_unique<Engine>(options_.engine));
    // Every replica runs its own concurrent runtime; results come back
    // through the per-item completion hook, so no engine callback is needed.
    Status started = engines_.back()->StartWorker(nullptr);
    if (!started.ok()) {
      PO_LOG_WARNING << "replica " << i << " runtime failed to start: "
                     << started.ToString();
    }
  }
  if (options_.health_poll_ms > 0) {
    monitor_ = std::thread([this] { MonitorLoop(); });
  }
}

ReplicaSet::~ReplicaSet() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    monitor_stop_ = true;
  }
  monitor_cv_.notify_all();
  if (monitor_.joinable()) {
    monitor_.join();
  }
  // Each drain runs every admitted record's completion hook, which delivers
  // its client promise via Complete (all members are still alive — engines_
  // is declared last for exactly this).
  for (auto& engine : engines_) {
    engine->StopWorker();
  }
  // A record still live was caught mid-hand-off by shutdown; fail it so no
  // client future is left broken.
  std::vector<std::shared_ptr<Record>> leftovers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftovers.reserve(live_.size());
    for (auto& [id, record] : live_) {
      leftovers.push_back(record);
    }
    live_.clear();
  }
  for (auto& record : leftovers) {
    record->promise->set_value(
        Result<ScoringResponse>(Status::Unavailable("replica set shut down")));
  }
}

double ReplicaSet::NowSeconds() const { return engines_[0]->NowSeconds(); }

bool ReplicaSet::AdmittingLocked(int r) const {
  const ReplicaState& st = states_[static_cast<size_t>(r)];
  if (st.draining || st.breaker == BreakerState::kOpen) {
    return false;
  }
  // Half-open admits exactly one request — the probe.
  if (st.breaker == BreakerState::kHalfOpen && st.probe_in_flight) {
    return false;
  }
  return true;
}

void ReplicaSet::LazyTransitionsLocked(double now) {
  for (ReplicaState& st : states_) {
    if (st.breaker == BreakerState::kOpen && now >= st.open_until_s) {
      st.breaker = BreakerState::kHalfOpen;
      st.probe_in_flight = false;
    }
  }
}

std::vector<int> ReplicaSet::CandidateOrderLocked(uint64_t key, double now) {
  LazyTransitionsLocked(now);
  std::vector<int> ready;
  std::vector<int> overloaded;
  for (int r : router_.PreferenceOrder(key)) {
    if (!AdmittingLocked(r)) {
      continue;
    }
    // Health-gated routing: an engine that is actively shedding goes to the
    // back of the order instead of out of it — if EVERY candidate is
    // overloaded the request still reaches one, so its 429 propagates
    // honestly instead of turning into a vague 503.
    if (engines_[static_cast<size_t>(r)]->Health() ==
        Engine::HealthStatus::kOverloaded) {
      overloaded.push_back(r);
    } else {
      ready.push_back(r);
    }
  }
  if (!ready.empty()) {
    int64_t min_outstanding = states_[static_cast<size_t>(ready[0])].outstanding;
    for (int r : ready) {
      min_outstanding =
          std::min(min_outstanding, states_[static_cast<size_t>(r)].outstanding);
    }
    // Load-aware spill: stickiness holds while the affinity target is within
    // spill_margin of the least-loaded candidate; past that, load wins (the
    // stable_sort keeps ring order among equals, so the re-sort is still
    // deterministic).
    if (states_[static_cast<size_t>(ready[0])].outstanding >
        min_outstanding + options_.spill_margin) {
      std::stable_sort(ready.begin(), ready.end(), [this](int a, int b) {
        return states_[static_cast<size_t>(a)].outstanding <
               states_[static_cast<size_t>(b)].outstanding;
      });
    }
  }
  ready.insert(ready.end(), overloaded.begin(), overloaded.end());
  return ready;
}

void ReplicaSet::StrikeLocked(int r, std::vector<FailoverItem>& out) {
  ReplicaState& st = states_[static_cast<size_t>(r)];
  if (st.breaker != BreakerState::kClosed) {
    return;  // already open (or probing — the probe outcome decides there)
  }
  st.consecutive_failures += 1;
  if (st.consecutive_failures >= options_.breaker_trip_failures) {
    TripLocked(r, out);
  }
}

void ReplicaSet::TripLocked(int r, std::vector<FailoverItem>& out) {
  ReplicaState& st = states_[static_cast<size_t>(r)];
  st.breaker = BreakerState::kOpen;
  st.open_until_s =
      NowSeconds() + static_cast<double>(options_.breaker_open_ms) / 1e3;
  st.consecutive_failures = 0;
  st.probe_in_flight = false;
  st.counters.breaker_trips += 1;
  cluster_.breaker_trips += 1;
  if (options_.failover_queued) {
    CollectFailoverLocked(r, out);
  }
}

void ReplicaSet::CollectFailoverLocked(int r, std::vector<FailoverItem>& out) {
  for (auto& [id, record] : live_) {
    if (record->replica != r || record->failing_over ||
        record->cancelled_by_client || record->engine_id < 0 ||
        record->failovers >= options_.max_failovers_per_request) {
      continue;
    }
    record->failing_over = true;
    out.push_back({record, record->replica, record->engine_id});
  }
}

void ReplicaSet::ExecuteFailover(std::vector<FailoverItem> items) {
  for (FailoverItem& item : items) {
    // At-most-once: only a request provably still queued is withdrawn. A
    // success runs the completion hook synchronously (kCancelled), and
    // Complete re-submits it elsewhere before this call returns.
    Status s =
        engines_[static_cast<size_t>(item.replica)]->CancelIfQueued(item.engine_id);
    if (s.ok()) {
      continue;
    }
    // Already dispatched (or already finished): it rides out where it is.
    std::lock_guard<std::mutex> lock(mu_);
    item.record->failing_over = false;
  }
}

Status ReplicaSet::RouteRecords(const std::vector<std::shared_ptr<Record>>& records,
                                const Engine::GroupCallback& hook, bool failover) {
  const auto n = static_cast<int64_t>(records.size());
  const uint64_t key =
      AffinityKey(records[0]->request.tokens, options_.engine.block_size);
  const int primary = router_.Primary(key);
  std::vector<int> order;
  {
    std::lock_guard<std::mutex> lock(mu_);
    order = CandidateOrderLocked(key, NowSeconds());
  }
  FaultInjector& injector = FaultInjector::Global();
  Status last = Status::Unavailable(
      "no replica is admitting requests (all tripped, probing, or draining)");
  for (int r : order) {
    ReplicaState& st = states_[static_cast<size_t>(r)];
    // Injected router-side latency: the hand-off wedges for stall_ms before
    // the replica sees anything (a slow interconnect, a GC'd sidecar).
    if (injector.Fire(fault::kReplicaStall)) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(injector.stall_ms()));
    }
    bool probe = false;
    std::vector<int> attempts(records.size(), 0);
    {
      std::lock_guard<std::mutex> lock(mu_);
      LazyTransitionsLocked(NowSeconds());
      if (!AdmittingLocked(r)) {
        continue;  // state moved while we tried earlier candidates
      }
      if (st.breaker == BreakerState::kHalfOpen) {
        probe = true;
        st.probe_in_flight = true;
        st.counters.half_open_probes += 1;
        cluster_.half_open_probes += 1;
      }
      // Optimistic assignment BEFORE the engine sees the group: the
      // completion hook may fire before SubmitGroupAsync returns, and
      // Complete needs record->replica to be right by then.
      st.outstanding += n;
      for (size_t i = 0; i < records.size(); ++i) {
        records[i]->replica = r;
        records[i]->engine_id = -1;
        records[i]->is_probe = probe;
        attempts[i] = ++records[i]->attempt;
      }
    }
    std::vector<FailoverItem> planned;
    if (injector.Fire(fault::kReplicaSubmit)) {
      // The hand-off itself failed — the replica never saw the group.
      last = Status::Unavailable("replica " + std::to_string(r) +
                                 ": injected hand-off failure (replica.submit)");
      {
        std::lock_guard<std::mutex> lock(mu_);
        st.outstanding -= n;
        st.counters.admit_failures += 1;
        for (auto& record : records) {
          record->replica = -1;
          record->is_probe = false;
        }
        if (probe) {
          st.probe_in_flight = false;
          TripLocked(r, planned);  // a failed probe reopens the breaker
        } else {
          StrikeLocked(r, planned);
        }
      }
      ExecuteFailover(std::move(planned));
      continue;
    }
    std::vector<ScoringRequest> copies;
    copies.reserve(records.size());
    for (const auto& record : records) {
      copies.push_back(record->request);
    }
    auto admitted =
        engines_[static_cast<size_t>(r)]->SubmitGroupAsync(std::move(copies), hook);
    if (admitted.ok()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        st.consecutive_failures = 0;
        for (size_t i = 0; i < records.size(); ++i) {
          // The attempt guard skips records a racing Complete has already
          // finished or moved to another hand-off.
          if (records[i]->attempt == attempts[i] && records[i]->replica == r &&
              records[i]->engine_id < 0) {
            records[i]->engine_id = admitted.value()[i].id;
          }
        }
        if (r == primary && !failover) {
          st.counters.routed_affinity += n;
          cluster_.routed_affinity += n;
        } else {
          st.counters.routed_spill += n;
          cluster_.routed_spill += n;
        }
        if (failover) {
          st.counters.failed_over_in += n;
        }
        // A trip that landed while we were inside the engine would have
        // missed these just-queued ids; withdraw them like the rest.
        if (st.breaker == BreakerState::kOpen && options_.failover_queued) {
          CollectFailoverLocked(r, planned);
        }
      }
      ExecuteFailover(std::move(planned));
      return Status::Ok();
    }
    const Status failed = admitted.status();
    const bool transient = failed.code() == StatusCode::kResourceExhausted ||
                           failed.code() == StatusCode::kFailedPrecondition;
    {
      std::lock_guard<std::mutex> lock(mu_);
      st.outstanding -= n;
      for (auto& record : records) {
        record->replica = -1;
        record->is_probe = false;
      }
      if (transient) {
        st.counters.admit_failures += 1;
        if (probe) {
          st.probe_in_flight = false;
          TripLocked(r, planned);
        } else {
          StrikeLocked(r, planned);
        }
      } else if (probe) {
        // Validation error: says nothing about the replica — the probe slot
        // reopens for the next request.
        st.probe_in_flight = false;
      }
    }
    ExecuteFailover(std::move(planned));
    if (!transient) {
      return failed;  // a validation error is the caller's, not the cluster's
    }
    last = failed;  // overload shed / draining race: try the next candidate
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    cluster_.unavailable_rejections += n;
  }
  return last;
}

Result<std::vector<ReplicaSet::Submission>> ReplicaSet::SubmitGroup(
    std::vector<ScoringRequest> requests) {
  if (requests.empty()) {
    return Status::InvalidArgument("request group is empty");
  }
  std::vector<std::shared_ptr<Record>> records;
  std::vector<Submission> submissions;
  records.reserve(requests.size());
  submissions.reserve(requests.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (ScoringRequest& request : requests) {
      auto record = std::make_shared<Record>();
      record->cluster_id = next_cluster_id_++;
      record->request = std::move(request);
      record->promise =
          std::make_shared<std::promise<Result<ScoringResponse>>>();
      Submission submission;
      submission.id = record->cluster_id;
      submission.future = record->promise->get_future();
      submissions.push_back(std::move(submission));
      live_.emplace(record->cluster_id, record);
      records.push_back(std::move(record));
    }
  }
  auto hook = [this, records](size_t index, const Result<ScoringResponse>& result) {
    Complete(records[index], result);
  };
  Status routed = RouteRecords(records, hook, /*failover=*/false);
  if (!routed.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& record : records) {
      live_.erase(record->cluster_id);
    }
    return routed;
  }
  return submissions;
}

Result<ReplicaSet::Submission> ReplicaSet::Submit(ScoringRequest request) {
  std::vector<ScoringRequest> group;
  group.push_back(std::move(request));
  auto submitted = SubmitGroup(std::move(group));
  if (!submitted.ok()) {
    return submitted.status();
  }
  return std::move(submitted.value()[0]);
}

Result<ScoringResponse> ReplicaSet::Score(ScoringRequest request) {
  auto submitted = Submit(std::move(request));
  if (!submitted.ok()) {
    return submitted.status();
  }
  return submitted.value().future.get();
}

Status ReplicaSet::Cancel(int64_t id) {
  int replica = -1;
  int64_t engine_id = -1;
  bool moving = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = live_.find(id);
    if (it == live_.end()) {
      return Status::NotFound("request " + std::to_string(id) +
                              " is not queued or in flight");
    }
    // The flag stops any failover re-submit and makes Complete deliver
    // kCancelled even if the result beats the engine-level cancel below.
    it->second->cancelled_by_client = true;
    replica = it->second->replica;
    engine_id = it->second->engine_id;
    moving = it->second->failing_over || engine_id < 0;
  }
  if (!moving && replica >= 0) {
    // kNotFound here means the completion raced us; the flag above already
    // decided what the client sees, so the cancel still "took".
    (void)engines_[static_cast<size_t>(replica)]->Cancel(engine_id);
  }
  return Status::Ok();
}

Engine::RequestPhase ReplicaSet::Phase(int64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(id);
  if (it == live_.end()) {
    return Engine::RequestPhase::kUnknown;
  }
  const Record& record = *it->second;
  if (record.replica < 0 || record.engine_id < 0 || record.failing_over) {
    return Engine::RequestPhase::kQueued;  // between replicas right now
  }
  return engines_[static_cast<size_t>(record.replica)]->Phase(record.engine_id);
}

void ReplicaSet::Complete(const std::shared_ptr<Record>& record,
                          const Result<ScoringResponse>& result) {
  std::vector<FailoverItem> planned;
  bool resubmit = false;
  bool deliver = false;
  bool overridden_cancel = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const int r = record->replica;
    ReplicaState& st = states_[static_cast<size_t>(r)];
    st.outstanding -= 1;
    if (record->is_probe) {
      record->is_probe = false;
      st.probe_in_flight = false;
      if (st.breaker == BreakerState::kHalfOpen) {
        if (result.ok()) {
          // The probe came back healthy: the breaker closes and the replica
          // rejoins the rotation with a clean slate.
          st.breaker = BreakerState::kClosed;
          st.consecutive_failures = 0;
          st.health_fault_streak = 0;
        } else if (result.status().code() == StatusCode::kInternal ||
                   result.status().code() == StatusCode::kResourceExhausted) {
          TripLocked(r, planned);  // probe failed: reopen
        }
        // kCancelled / kDeadlineExceeded say nothing about replica health:
        // stay half-open, the next affinity request probes again.
      }
    } else if (st.breaker == BreakerState::kClosed &&
               !record->cancelled_by_client) {
      if (result.ok()) {
        st.consecutive_failures = 0;
      } else if (result.status().code() == StatusCode::kInternal) {
        // Execution failures (watchdog-declared stalls included) strike the
        // breaker like failed hand-offs do.
        StrikeLocked(r, planned);
      }
    }
    if (record->failing_over && !record->cancelled_by_client &&
        result.status().code() == StatusCode::kCancelled &&
        record->failovers < options_.max_failovers_per_request) {
      // This kCancelled is our own withdrawal, not a client action: the
      // request provably never ran here, so it may run elsewhere.
      record->failing_over = false;
      record->failovers += 1;
      st.counters.failed_over_out += 1;
      cluster_.failovers += 1;
      resubmit = true;
    } else {
      deliver = true;
      overridden_cancel = record->cancelled_by_client && result.ok();
      live_.erase(record->cluster_id);
    }
  }
  if (deliver) {
    if (overridden_cancel) {
      // The cancel landed while the request was being routed; mirror the
      // engine's mark-and-ignore contract.
      record->promise->set_value(Result<ScoringResponse>(Status::Cancelled(
          "request cancelled while in flight; result discarded")));
    } else {
      record->promise->set_value(result);
    }
  }
  if (resubmit) {
    Resubmit(record);
  }
  ExecuteFailover(std::move(planned));
}

void ReplicaSet::Resubmit(const std::shared_ptr<Record>& record) {
  std::vector<std::shared_ptr<Record>> records{record};
  auto hook = [this, records](size_t, const Result<ScoringResponse>& result) {
    Complete(records[0], result);
  };
  Status routed = RouteRecords(records, hook, /*failover=*/true);
  if (routed.ok()) {
    return;
  }
  // Nowhere to move it: the request fails with a structured, retryable
  // error instead of hanging (the facade RetryPolicy handles both codes).
  {
    std::lock_guard<std::mutex> lock(mu_);
    live_.erase(record->cluster_id);
  }
  record->promise->set_value(Result<ScoringResponse>(
      routed.code() == StatusCode::kResourceExhausted
          ? routed
          : Status::Unavailable("failover re-submit failed: " + routed.message())));
}

Status ReplicaSet::Drain(int index) {
  if (index < 0 || index >= n_replicas()) {
    return Status::InvalidArgument("replica index " + std::to_string(index) +
                                   " out of range");
  }
  std::lock_guard<std::mutex> lock(mu_);
  states_[static_cast<size_t>(index)].draining = true;
  return Status::Ok();
}

Status ReplicaSet::Rejoin(int index) {
  if (index < 0 || index >= n_replicas()) {
    return Status::InvalidArgument("replica index " + std::to_string(index) +
                                   " out of range");
  }
  std::lock_guard<std::mutex> lock(mu_);
  ReplicaState& st = states_[static_cast<size_t>(index)];
  st.draining = false;
  st.breaker = BreakerState::kClosed;
  st.consecutive_failures = 0;
  st.health_fault_streak = 0;
  st.probe_in_flight = false;
  return Status::Ok();
}

Status ReplicaSet::Trip(int index, const std::string& reason) {
  if (index < 0 || index >= n_replicas()) {
    return Status::InvalidArgument("replica index " + std::to_string(index) +
                                   " out of range");
  }
  PO_LOG_WARNING << "replica " << index << " tripped: " << reason;
  std::vector<FailoverItem> planned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    TripLocked(index, planned);
  }
  ExecuteFailover(std::move(planned));
  return Status::Ok();
}

Engine::HealthStatus ReplicaSet::Health() const {
  std::lock_guard<std::mutex> lock(mu_);
  int admitting = 0;
  bool impaired = false;
  for (int r = 0; r < n_replicas(); ++r) {
    const bool admits = AdmittingLocked(r);
    const Engine::HealthStatus engine_health =
        engines_[static_cast<size_t>(r)]->Health();
    if (admits && engine_health != Engine::HealthStatus::kOverloaded) {
      ++admitting;
    }
    if (!admits || engine_health != Engine::HealthStatus::kOk) {
      impaired = true;
    }
  }
  if (admitting == 0) {
    return Engine::HealthStatus::kOverloaded;  // the 503 + Retry-After shape
  }
  return impaired ? Engine::HealthStatus::kDegraded : Engine::HealthStatus::kOk;
}

std::vector<ReplicaSnapshot> ReplicaSet::Replicas() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ReplicaSnapshot> out;
  out.reserve(states_.size());
  for (int r = 0; r < n_replicas(); ++r) {
    const ReplicaState& st = states_[static_cast<size_t>(r)];
    ReplicaSnapshot snapshot;
    snapshot.index = r;
    snapshot.breaker = st.breaker;
    snapshot.draining = st.draining;
    snapshot.drained = st.draining && st.outstanding == 0;
    snapshot.outstanding = st.outstanding;
    snapshot.engine_health = engines_[static_cast<size_t>(r)]->Health();
    snapshot.admitting =
        AdmittingLocked(r) &&
        snapshot.engine_health != Engine::HealthStatus::kOverloaded;
    snapshot.counters = st.counters;
    snapshot.engine = engines_[static_cast<size_t>(r)]->stats();
    out.push_back(std::move(snapshot));
  }
  return out;
}

ClusterStats ReplicaSet::Stats() const {
  ClusterStats stats;
  stats.replicas = Replicas();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.cluster = cluster_;
  }
  EngineStats& t = stats.totals;
  for (const ReplicaSnapshot& r : stats.replicas) {
    const EngineStats& e = r.engine;
    t.submitted += e.submitted;
    t.completed += e.completed;
    t.failed += e.failed;
    t.cancelled += e.cancelled;
    t.cancelled_in_flight += e.cancelled_in_flight;
    t.deadline_expired += e.deadline_expired;
    t.deadline_expired_in_flight += e.deadline_expired_in_flight;
    t.abort_checks += e.abort_checks;
    t.alloc_retries += e.alloc_retries;
    t.alloc_retry_successes += e.alloc_retry_successes;
    t.shed += e.shed;
    t.watchdog_stalls += e.watchdog_stalls;
    t.total_execute_s += e.total_execute_s;
    // peak_in_flight sums — it is the cluster's concurrency capacity view —
    // while the per-lane peaks max, since lanes never span replicas.
    t.peak_in_flight += e.peak_in_flight;
    t.batches_dispatched += e.batches_dispatched;
    t.batched_requests += e.batched_requests;
    t.batched_miss_tokens += e.batched_miss_tokens;
    t.packing_skips += e.packing_skips;
    t.peak_batch_size = std::max(t.peak_batch_size, e.peak_batch_size);
    t.peak_activation_bytes =
        std::max(t.peak_activation_bytes, e.peak_activation_bytes);
    t.cache_bytes += e.cache_bytes;
    t.cache.lookups += e.cache.lookups;
    t.cache.hit_tokens += e.cache.hit_tokens;
    t.cache.lookup_tokens += e.cache.lookup_tokens;
    t.cache.evictions += e.cache.evictions;
    t.cache.insertions += e.cache.insertions;
    t.cache.failed_acquires += e.cache.failed_acquires;
    t.offload_bytes += e.offload_bytes;
    t.offload_hit_tokens += e.offload_hit_tokens;
    t.offload_demotions += e.offload_demotions;
    t.offload_promotions += e.offload_promotions;
    t.offload_evictions += e.offload_evictions;
    t.offload_read_hits += e.offload_read_hits;
    t.offload_read_misses += e.offload_read_misses;
  }
  // The injector is process-global; summing per-engine copies would
  // multiply-count the same fires.
  t.faults_injected = FaultInjector::Global().total_fires();
  return stats;
}

void ReplicaSet::MonitorLoop() {
  const auto poll =
      std::chrono::milliseconds(std::max<int64_t>(options_.health_poll_ms, 1));
  std::unique_lock<std::mutex> lock(mu_);
  while (!monitor_stop_) {
    monitor_cv_.wait_for(lock, poll);
    if (monitor_stop_) {
      break;
    }
    LazyTransitionsLocked(NowSeconds());
    std::vector<FailoverItem> planned;
    for (int r = 0; r < n_replicas(); ++r) {
      ReplicaState& st = states_[static_cast<size_t>(r)];
      // One health probe per replica per tick, in replica order — so hit
      // index (tick-1)*n_replicas + replica + 1 at the replica.health site,
      // which is what makes monitor-driven trips schedulable in tests. A
      // fired fault is a failed probe; a streak of them trips the breaker.
      if (FaultInjector::Global().Fire(fault::kReplicaHealth)) {
        st.health_fault_streak += 1;
        if (st.breaker == BreakerState::kClosed &&
            st.health_fault_streak >= options_.health_trip_failures) {
          st.health_fault_streak = 0;
          TripLocked(r, planned);
        }
      } else {
        st.health_fault_streak = 0;
      }
    }
    if (!planned.empty()) {
      lock.unlock();
      ExecuteFailover(std::move(planned));
      lock.lock();
    }
  }
}

}  // namespace prefillonly
