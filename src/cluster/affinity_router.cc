#include "src/cluster/affinity_router.h"

#include <algorithm>
#include <cassert>

#include "src/common/hash.h"
#include "src/common/rng.h"

namespace prefillonly {

uint64_t AffinityKey(std::span<const int32_t> tokens, int block_size) {
  const size_t prefix = std::min(tokens.size(), static_cast<size_t>(block_size));
  // Same mixing as BlockHashChain's first element, so for prompts of at
  // least one block the affinity key IS chain[0].
  return HashTokenBlock(kFnvOffset, tokens.subspan(0, prefix));
}

AffinityRouter::AffinityRouter(int n_replicas, int vnodes_per_replica)
    : n_replicas_(n_replicas) {
  assert(n_replicas >= 1);
  assert(vnodes_per_replica >= 1);
  ring_.reserve(static_cast<size_t>(n_replicas) * vnodes_per_replica);
  for (int replica = 0; replica < n_replicas; ++replica) {
    // One SplitMix64 stream per replica: point positions depend only on the
    // replica index, so growing the set from N to N+1 replicas leaves every
    // existing point where it was (classic consistent-hashing stability).
    uint64_t stream = 0x5eed0000ULL + static_cast<uint64_t>(replica);
    for (int v = 0; v < vnodes_per_replica; ++v) {
      ring_.push_back({SplitMix64(stream), replica});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    if (a.hash != b.hash) {
      return a.hash < b.hash;
    }
    return a.replica < b.replica;  // deterministic tie-break, however unlikely
  });
}

int AffinityRouter::Primary(uint64_t key) const {
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key,
      [](const Point& p, uint64_t k) { return p.hash < k; });
  if (it == ring_.end()) {
    it = ring_.begin();  // wrap around the circle
  }
  return it->replica;
}

std::vector<int> AffinityRouter::PreferenceOrder(uint64_t key) const {
  std::vector<int> order;
  order.reserve(static_cast<size_t>(n_replicas_));
  std::vector<bool> seen(static_cast<size_t>(n_replicas_), false);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key,
      [](const Point& p, uint64_t k) { return p.hash < k; });
  for (size_t step = 0; step < ring_.size() && order.size() < seen.size(); ++step) {
    if (it == ring_.end()) {
      it = ring_.begin();
    }
    if (!seen[static_cast<size_t>(it->replica)]) {
      seen[static_cast<size_t>(it->replica)] = true;
      order.push_back(it->replica);
    }
    ++it;
  }
  return order;
}

}  // namespace prefillonly
