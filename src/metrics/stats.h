// Statistics helpers: streaming moments, exact percentiles, CDFs.
//
// The evaluation reports mean latency, P99 latency, throughput and latency
// CDFs (Figs. 6, 7, 11). Sample counts per run are small (hundreds to a few
// thousand requests), so percentiles are computed exactly from the sorted
// sample rather than with a sketch.
#ifndef SRC_METRICS_STATS_H_
#define SRC_METRICS_STATS_H_

#include <cstddef>
#include <vector>

namespace prefillonly {

// Welford's online mean/variance.
class OnlineStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Collects raw samples; computes exact order statistics on demand.
class SampleSet {
 public:
  void Add(double x) { samples_.push_back(x); }
  void Reserve(size_t n) { samples_.reserve(n); }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double Mean() const;
  // Percentile by linear interpolation between closest ranks; p in [0, 100].
  // Precondition: at least one sample.
  double Percentile(double p) const;
  double P50() const { return Percentile(50.0); }
  double P99() const { return Percentile(99.0); }
  double Max() const;

  // Empirical CDF evaluated at `points` evenly spaced sample quantiles;
  // returns (value, cumulative_fraction) pairs suitable for plotting Fig. 11.
  std::vector<std::pair<double, double>> Cdf(int points = 100) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
};

// Pearson correlation coefficient of two equal-length series.
// Returns 0 when either series is constant or lengths mismatch.
double PearsonCorrelation(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace prefillonly

#endif  // SRC_METRICS_STATS_H_
