// Ordinary least squares for small feature counts.
//
// The JCT profiler (paper §6.3) fits a linear model
//   jct ~ a * n_input + b * n_cached + c
// over a profiled grid. Feature dimensionality is tiny, so the normal
// equations are solved directly with Gaussian elimination.
#ifndef SRC_METRICS_REGRESSION_H_
#define SRC_METRICS_REGRESSION_H_

#include <vector>

#include "src/common/status.h"

namespace prefillonly {

struct LinearModel {
  // coefficients[i] multiplies feature i; intercept is added.
  std::vector<double> coefficients;
  double intercept = 0.0;

  double Predict(const std::vector<double>& features) const;
};

// Fits y ~ X * beta + intercept by OLS. Each row of `rows` is one sample's
// feature vector; all rows must have the same size. Fails when the system
// is singular or under-determined.
Result<LinearModel> FitLinear(const std::vector<std::vector<double>>& rows,
                              const std::vector<double>& y);

// Coefficient of determination of `model` on the given data (1 = perfect).
double RSquared(const LinearModel& model, const std::vector<std::vector<double>>& rows,
                const std::vector<double>& y);

}  // namespace prefillonly

#endif  // SRC_METRICS_REGRESSION_H_
