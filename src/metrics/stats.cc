#include "src/metrics/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace prefillonly {

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double SampleSet::Mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double s : samples_) {
    sum += s;
  }
  return sum / static_cast<double>(samples_.size());
}

void SampleSet::EnsureSorted() const {
  if (sorted_.size() != samples_.size()) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
  }
}

double SampleSet::Percentile(double p) const {
  assert(!samples_.empty());
  EnsureSorted();
  if (sorted_.size() == 1) {
    return sorted_[0];
  }
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double SampleSet::Max() const {
  assert(!samples_.empty());
  EnsureSorted();
  return sorted_.back();
}

std::vector<std::pair<double, double>> SampleSet::Cdf(int points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points <= 0) {
    return out;
  }
  EnsureSorted();
  out.reserve(static_cast<size_t>(points));
  for (int i = 1; i <= points; ++i) {
    const double frac = static_cast<double>(i) / points;
    const auto idx = static_cast<size_t>(
        std::min<double>(frac * static_cast<double>(sorted_.size()),
                         static_cast<double>(sorted_.size())) -
        1.0 + 0.5);
    const size_t clamped_idx = std::min(idx, sorted_.size() - 1);
    out.emplace_back(sorted_[clamped_idx], frac);
  }
  return out;
}

double PearsonCorrelation(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) {
    return 0.0;
  }
  const auto n = static_cast<double>(x.size());
  double mx = 0.0;
  double my = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace prefillonly
