#include "src/metrics/regression.h"

#include <cassert>
#include <cmath>
#include <cstddef>

namespace prefillonly {

double LinearModel::Predict(const std::vector<double>& features) const {
  assert(features.size() == coefficients.size());
  double y = intercept;
  for (size_t i = 0; i < coefficients.size(); ++i) {
    y += coefficients[i] * features[i];
  }
  return y;
}

Result<LinearModel> FitLinear(const std::vector<std::vector<double>>& rows,
                              const std::vector<double>& y) {
  if (rows.empty() || rows.size() != y.size()) {
    return Status::InvalidArgument("regression needs matching, non-empty X and y");
  }
  const size_t n_features = rows[0].size();
  const size_t dim = n_features + 1;  // + intercept column
  if (rows.size() < dim) {
    return Status::InvalidArgument("under-determined system");
  }
  for (const auto& row : rows) {
    if (row.size() != n_features) {
      return Status::InvalidArgument("ragged feature rows");
    }
  }

  // Normal equations: (A^T A) beta = A^T y with A = [X | 1].
  std::vector<std::vector<double>> ata(dim, std::vector<double>(dim, 0.0));
  std::vector<double> aty(dim, 0.0);
  for (size_t r = 0; r < rows.size(); ++r) {
    std::vector<double> a(dim);
    for (size_t j = 0; j < n_features; ++j) {
      a[j] = rows[r][j];
    }
    a[n_features] = 1.0;
    for (size_t i = 0; i < dim; ++i) {
      for (size_t j = 0; j < dim; ++j) {
        ata[i][j] += a[i] * a[j];
      }
      aty[i] += a[i] * y[r];
    }
  }

  // Gaussian elimination with partial pivoting.
  for (size_t col = 0; col < dim; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < dim; ++r) {
      if (std::abs(ata[r][col]) > std::abs(ata[pivot][col])) {
        pivot = r;
      }
    }
    if (std::abs(ata[pivot][col]) < 1e-12) {
      return Status::InvalidArgument("singular design matrix");
    }
    std::swap(ata[col], ata[pivot]);
    std::swap(aty[col], aty[pivot]);
    for (size_t r = 0; r < dim; ++r) {
      if (r == col) {
        continue;
      }
      const double factor = ata[r][col] / ata[col][col];
      for (size_t c = col; c < dim; ++c) {
        ata[r][c] -= factor * ata[col][c];
      }
      aty[r] -= factor * aty[col];
    }
  }

  LinearModel model;
  model.coefficients.resize(n_features);
  for (size_t i = 0; i < n_features; ++i) {
    model.coefficients[i] = aty[i] / ata[i][i];
  }
  model.intercept = aty[n_features] / ata[n_features][n_features];
  return model;
}

double RSquared(const LinearModel& model, const std::vector<std::vector<double>>& rows,
                const std::vector<double>& y) {
  if (rows.empty() || rows.size() != y.size()) {
    return 0.0;
  }
  double mean_y = 0.0;
  for (double v : y) {
    mean_y += v;
  }
  mean_y /= static_cast<double>(y.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (size_t i = 0; i < rows.size(); ++i) {
    const double pred = model.Predict(rows[i]);
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - mean_y) * (y[i] - mean_y);
  }
  if (ss_tot <= 0.0) {
    return ss_res <= 1e-12 ? 1.0 : 0.0;
  }
  return 1.0 - ss_res / ss_tot;
}

}  // namespace prefillonly
