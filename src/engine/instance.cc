#include "src/engine/instance.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/common/logging.h"

namespace prefillonly {

namespace {

int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

}  // namespace

EngineInstance::EngineInstance(Simulation& sim, const EngineConfig& config,
                               std::string name)
    : sim_(sim),
      config_(config),
      name_(std::move(name)),
      cost_(config.hardware.llm, config.hardware.gpu, config.cost),
      memory_(config.hardware.llm, config.hardware.gpu, config.memory),
      is_pipeline_(config.kind == EngineKind::kPipelineParallel) {
  mil_ = memory_.MaxInputLength(config_.kind);
  const int64_t reserve =
      config_.reserve_tokens > 0 ? std::min(config_.reserve_tokens, mil_) : mil_;
  pool_tokens_ = std::max<int64_t>(
      memory_.CachePoolTokensPerInstance(config_.kind, std::max<int64_t>(reserve, 1)), 0);
  cache_ = std::make_unique<PrefixCache>(config_.block_size,
                                         CeilDiv(pool_tokens_, config_.block_size));
  const double kv_per_token = memory_.KvBytesPerTokenPerGpu(config_.kind);
  const int64_t offload_blocks =
      kv_per_token > 0
          ? static_cast<int64_t>(config_.offload_bytes / kv_per_token) /
                config_.block_size
          : 0;
  offload_ = std::make_unique<OffloadDirectory>(offload_blocks);
  if (offload_blocks > 0) {
    // Demote evicted blocks to the host tier instead of discarding them.
    cache_->SetEvictionListener([this](uint64_t hash, BlockId, int64_t depth) {
      offload_->Insert(hash, depth);
    });
  }
  estimator_ = std::make_unique<CacheMissProxyEstimator>();
  scheduler_ = std::make_unique<Scheduler>(config_.policy, config_.lambda,
                                           estimator_.get());
}

void EngineInstance::SyncCacheClock() {
  cache_->SetClock(static_cast<uint64_t>(sim_.now() * 1e6) + 1);
}

int64_t EngineInstance::MatchedTokens(const SimRequest& request) const {
  const int64_t gpu = cache_->MatchTokens(request.block_hashes);
  const int64_t offload =
      offload_->PeekContinuation(request.block_hashes, gpu / config_.block_size) *
      config_.block_size;
  // The last token's logits are always computed, so at most n-1 tokens of a
  // request can be served from cache.
  return std::min(gpu + offload, request.n_tokens - 1);
}

void EngineInstance::Submit(const SimRequest& request) {
  ++stats_.submitted;
  if (request.n_tokens > mil_) {
    // The request cannot fit on this engine at all (Table 2's "x").
    ++stats_.rejected;
    return;
  }
  queue_.push_back(Waiting{&request, sim_.now(), MatchedTokens(request)});
  MaybeStart();
}

EngineInstance::Waiting EngineInstance::PickNext() {
  assert(!queue_.empty());
  std::vector<SchedEntry> entries;
  entries.reserve(queue_.size());
  const bool calibrate = config_.policy == SchedPolicy::kSrjfCalibrated;
  for (const Waiting& w : queue_) {
    SchedEntry entry;
    entry.arrival_time = w.arrival;
    entry.n_input = w.request->n_tokens;
    entry.n_cached_at_arrival = w.n_cached_at_arrival;
    // Continuous JCT calibration: refresh the cache-hit length against the
    // *current* cache contents before every decision (§6.3). Non-calibrated
    // policies keep the stale arrival-time estimate.
    entry.n_cached_now = calibrate ? MatchedTokens(*w.request) : w.n_cached_at_arrival;
    entries.push_back(entry);
  }
  const size_t pick = scheduler_->PickNext(entries, sim_.now());
  Waiting chosen = queue_[pick];
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
  return chosen;
}

double EngineInstance::ServiceTime(int64_t n_new, int64_t n_cached) const {
  const auto& mem_cfg = config_.memory;
  switch (config_.kind) {
    case EngineKind::kPagedAttention:
    case EngineKind::kKvDropNaive:
      return cost_.PrefillTime(n_new, n_cached, PassStrategy::kStandard, 0);
    case EngineKind::kChunkedPrefill:
      return cost_.PrefillTime(n_new, n_cached, PassStrategy::kChunkedPrefill,
                               mem_cfg.chunk_tokens);
    case EngineKind::kPrefillOnly:
      return cost_.PrefillTime(n_new, n_cached, PassStrategy::kHybrid,
                               mem_cfg.hybrid_chunk_tokens);
    case EngineKind::kTensorParallel:
      return cost_.TensorParallelTime(
          n_new, n_cached, mem_cfg.parallel_degree, config_.hardware.link,
          mem_cfg.tp_uses_chunked ? PassStrategy::kChunkedPrefill
                                  : PassStrategy::kStandard,
          mem_cfg.chunk_tokens);
    case EngineKind::kPipelineParallel:
      break;  // handled by StageTime
  }
  return 0.0;
}

double EngineInstance::StageTime(int64_t n_new, int64_t n_cached, int stage) const {
  (void)stage;
  const auto& mem_cfg = config_.memory;
  return cost_.PipelineStageTime(
      n_new, n_cached, mem_cfg.parallel_degree, config_.hardware.link,
      mem_cfg.pp_uses_chunked ? PassStrategy::kChunkedPrefill : PassStrategy::kStandard,
      mem_cfg.chunk_tokens);
}

void EngineInstance::MaybeStart() {
  if (server_busy_ || queue_.empty()) {
    return;
  }
  StartOnServer(PickNext());
}

void EngineInstance::StartOnServer(Waiting waiting) {
  const SimRequest& request = *waiting.request;
  SyncCacheClock();

  // Block acquisition. PrefillOnly only ever takes blocks for the prefix it
  // will retain (suffix KV discarding): the chain is truncated to the pool
  // capacity up front. Baselines must hold the FULL request KV during
  // execution, cache-evicting as needed.
  const auto chain_len = static_cast<int64_t>(request.block_hashes.size());
  std::span<const uint64_t> chain(request.block_hashes);
  int64_t need_blocks = 0;
  int64_t cacheable_blocks = 0;
  if (config_.kind == EngineKind::kPrefillOnly) {
    cacheable_blocks = std::min(chain_len, cache_->capacity_blocks());
    chain = chain.subspan(0, static_cast<size_t>(cacheable_blocks));
    need_blocks = cacheable_blocks;
  } else if (config_.kind == EngineKind::kKvDropNaive) {
    // The naive strawman discards all KV: nothing acquired, nothing cached.
    chain = chain.subspan(0, 0);
    need_blocks = 0;
    cacheable_blocks = 0;
  } else {
    need_blocks = CeilDiv(request.n_tokens, config_.block_size);
    cacheable_blocks = chain_len;
  }

  // Token-accurate lookup accounting: when the chain was truncated to the
  // retention budget only the truncated span is presented; otherwise the
  // whole request (trailing partial block included) counts as looked up.
  const int64_t lookup_tokens =
      static_cast<int64_t>(chain.size()) < chain_len
          ? static_cast<int64_t>(chain.size()) * config_.block_size
          : request.n_tokens;
  auto acquisition = cache_->Acquire(chain, need_blocks, lookup_tokens);
  if (!acquisition.ok()) {
    // Even with every cache entry evicted the request KV does not fit.
    PO_LOG_DEBUG << name_ << ": reject request " << request.id << " ("
                 << request.n_tokens << " tokens > pool)";
    ++stats_.rejected;
    MaybeStart();
    return;
  }

  auto running = std::make_shared<Running>();
  running->request = &request;
  running->arrival = waiting.arrival;
  running->acquisition = std::move(acquisition.value());
  running->cacheable_blocks = cacheable_blocks;

  // Offloaded blocks extend the cached prefix (§9): they skip recomputation
  // but are reloaded from host memory at link speed.
  const int64_t gpu_cached_tokens =
      running->acquisition.matched_blocks * config_.block_size;
  int64_t offload_tokens = 0;
  if (offload_->capacity_blocks() > 0) {
    offload_tokens = offload_->MatchContinuation(
                         request.block_hashes, running->acquisition.matched_blocks) *
                     config_.block_size;
  }
  const int64_t n_cached =
      std::min(gpu_cached_tokens + offload_tokens, request.n_tokens - 1);
  const int64_t reload_tokens = std::max<int64_t>(n_cached - gpu_cached_tokens, 0);
  const int64_t n_new = request.n_tokens - n_cached;
  stats_.scheduled_tokens += request.n_tokens;
  stats_.scheduled_cached_tokens += n_cached;
  const double reload_time =
      static_cast<double>(reload_tokens) * memory_.KvBytesPerTokenPerGpu(config_.kind) /
      config_.offload_load_bandwidth;
  stats_.offload_hit_tokens += reload_tokens;

  server_busy_ = true;
  if (is_pipeline_) {
    const double t = StageTime(n_new, n_cached, 0) + reload_time;
    stats_.busy_time_s += t;
    sim_.ScheduleAfter(t, [this, running] { FinishStage1(running); });
  } else {
    const double t = ServiceTime(n_new, n_cached) + reload_time;
    stats_.busy_time_s += t;
    sim_.ScheduleAfter(t, [this, running] { Complete(running); });
  }
}

void EngineInstance::FinishStage1(std::shared_ptr<Running> running) {
  server_busy_ = false;
  stage2_queue_.push_back(std::move(running));
  MaybeStartStage2();
  MaybeStart();  // stage 1 is free: admit the next request (pipelining)
}

void EngineInstance::MaybeStartStage2() {
  if (stage2_busy_ || stage2_queue_.empty()) {
    return;
  }
  std::shared_ptr<Running> running = std::move(stage2_queue_.front());
  stage2_queue_.pop_front();
  stage2_busy_ = true;
  const SimRequest& request = *running->request;
  const int64_t n_cached = std::min(
      running->acquisition.matched_blocks * config_.block_size, request.n_tokens - 1);
  const double t = StageTime(request.n_tokens - n_cached, n_cached, 1);
  sim_.ScheduleAfter(t, [this, running] {
    stage2_busy_ = false;
    Complete(running);
    MaybeStartStage2();
  });
}

void EngineInstance::Complete(std::shared_ptr<Running> running) {
  SyncCacheClock();
  cache_->Release(running->acquisition, running->cacheable_blocks);
  // Suffix KV offloading (§9): blocks beyond the GPU retention budget are
  // streamed to host memory during the pass instead of being discarded,
  // so a future identical prefix can reload rather than recompute them.
  if (offload_->capacity_blocks() > 0) {
    offload_->SetClock(static_cast<uint64_t>(sim_.now() * 1e6) + 1);
    const auto& chain = running->request->block_hashes;
    for (size_t idx = static_cast<size_t>(running->cacheable_blocks);
         idx < chain.size(); ++idx) {
      offload_->Insert(chain[idx], static_cast<int64_t>(idx));
    }
  }
  ++stats_.completed;
  stats_.last_completion_s = sim_.now();
  stats_.latencies.Add(sim_.now() - running->arrival);
  if (!is_pipeline_) {
    server_busy_ = false;
  }
  MaybeStart();
}

}  // namespace prefillonly
