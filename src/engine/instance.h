// One simulated engine instance (a single-GPU engine, a TP group, or a
// 2-stage pipeline).
//
// The instance owns a waiting queue, a scheduling policy, a prefix cache
// backed by a block pool sized from the memory model, and a service-time
// function from the cost model. Requests flow:
//
//   Submit -> waiting queue -> (scheduler picks; PrefillOnly refreshes
//   n_cached against the live cache first = continuous JCT calibration) ->
//   Acquire KV blocks -> busy for ServiceTime(n_new, n_cached) ->
//   Release (cache the prefix, discard the suffix) -> record latency.
//
// Pipeline-parallel instances chain two stage servers with a FIFO handoff
// queue; pipeline bubbles emerge from the queueing rather than a constant.
#ifndef SRC_ENGINE_INSTANCE_H_
#define SRC_ENGINE_INSTANCE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/engine/engine_config.h"
#include "src/kvcache/offload_directory.h"
#include "src/kvcache/prefix_cache.h"
#include "src/metrics/stats.h"
#include "src/sim/simulation.h"
#include "src/workload/dataset.h"

namespace prefillonly {

struct InstanceStats {
  int64_t submitted = 0;
  int64_t completed = 0;
  int64_t rejected = 0;
  double busy_time_s = 0.0;
  double last_completion_s = 0.0;
  int64_t offload_hit_tokens = 0;  // KV reloaded from the CPU tier
  // Request-level cache accounting (covers both tiers, full request
  // lengths — unlike PrefixCacheStats, which sees PrefillOnly's truncated
  // chains only).
  int64_t scheduled_tokens = 0;
  int64_t scheduled_cached_tokens = 0;
  SampleSet latencies;  // completion - arrival, per completed request
};

class EngineInstance {
 public:
  EngineInstance(Simulation& sim, const EngineConfig& config, std::string name);

  // Hands a request to this instance at the current simulation time.
  void Submit(const SimRequest& request);

  const InstanceStats& stats() const { return stats_; }
  const PrefixCache& cache() const { return *cache_; }
  const std::string& name() const { return name_; }
  int64_t cache_pool_tokens() const { return pool_tokens_; }
  int64_t max_input_length() const { return mil_; }

 private:
  struct Waiting {
    const SimRequest* request;
    double arrival;
    int64_t n_cached_at_arrival;
  };
  struct Running {
    const SimRequest* request;
    double arrival;
    Acquisition acquisition;
    int64_t cacheable_blocks;
  };

  void MaybeStart();
  // Picks a waiting request (refreshing n_cached for calibrated SRJF),
  // removes it from the queue and returns it.
  Waiting PickNext();
  int64_t MatchedTokens(const SimRequest& request) const;
  double ServiceTime(int64_t n_new, int64_t n_cached) const;
  double StageTime(int64_t n_new, int64_t n_cached, int stage) const;
  void StartOnServer(Waiting waiting);
  void FinishStage1(std::shared_ptr<Running> running);
  void MaybeStartStage2();
  void Complete(std::shared_ptr<Running> running);
  void SyncCacheClock();

  Simulation& sim_;
  EngineConfig config_;
  std::string name_;
  CostModel cost_;
  MemoryModel memory_;
  std::unique_ptr<PrefixCache> cache_;
  std::unique_ptr<OffloadDirectory> offload_;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<JctEstimator> estimator_;

  int64_t mil_ = 0;
  int64_t pool_tokens_ = 0;
  bool is_pipeline_ = false;

  std::vector<Waiting> queue_;
  bool server_busy_ = false;   // single server / PP stage 1
  bool stage2_busy_ = false;   // PP stage 2
  std::deque<std::shared_ptr<Running>> stage2_queue_;

  InstanceStats stats_;
};

}  // namespace prefillonly

#endif  // SRC_ENGINE_INSTANCE_H_
