// Cluster harness: router + engine instances + arrival schedule.
//
// Reproduces the paper's deployment (§7.1): non-parallel engines get one
// instance per GPU behind user-id round-robin routing; TP/PP get a single
// instance spanning both GPUs. Run() replays a dataset's arrival schedule
// through the discrete-event simulator and aggregates the metrics the
// paper plots: mean latency, P99 latency, throughput, cache hit rate.
#ifndef SRC_ENGINE_CLUSTER_H_
#define SRC_ENGINE_CLUSTER_H_

#include <string>
#include <vector>

#include "src/engine/engine_config.h"
#include "src/engine/instance.h"
#include "src/metrics/stats.h"
#include "src/workload/dataset.h"

namespace prefillonly {

struct ClusterResult {
  std::string engine;
  int64_t submitted = 0;
  int64_t completed = 0;
  int64_t rejected = 0;
  double mean_latency_s = 0.0;
  double p99_latency_s = 0.0;
  double max_latency_s = 0.0;
  double throughput_rps = 0.0;  // completed / makespan
  double makespan_s = 0.0;
  double cache_hit_rate = 0.0;     // token-weighted across instances
  int64_t offload_hit_tokens = 0;  // KV reloaded from the CPU tier
  SampleSet latencies;             // pooled across instances (for CDFs)

  // A run is feasible when it completed work and its shed rate (rejected /
  // submitted) stays within `max_shed_rate`. With watermark shedding
  // (ISSUE 6) a BOUNDED rejection rate is expected behavior near
  // saturation, not a failure — callers chasing the paper's zero-loss
  // curves keep the strict default; SLO-style evaluations pass the rate
  // their error budget allows (e.g. 0.01 for 1%).
  bool Feasible(double max_shed_rate = 0.0) const {
    if (completed <= 0) {
      return false;
    }
    if (submitted <= 0) {
      return rejected == 0;
    }
    const double shed_rate =
        static_cast<double>(rejected) / static_cast<double>(submitted);
    return shed_rate <= max_shed_rate;
  }
};

// Runs `dataset` (arrival times must be assigned) on a fresh deployment of
// `config`. Deterministic: same config + dataset => same result.
ClusterResult RunCluster(const EngineConfig& config, const Dataset& dataset);

// The paper's QPS anchor: saturated request throughput with every request
// arriving at t = 0 (user bursts intact, routing as usual).
double MeasureSaturatedThroughput(const EngineConfig& config, Dataset dataset);

}  // namespace prefillonly

#endif  // SRC_ENGINE_CLUSTER_H_
