// Configuration of a simulated serving deployment.
//
// One EngineConfig describes the paper's unit of comparison: an engine kind
// (PrefillOnly or one of the four baselines) running a model on a two-GPU
// hardware setup. Non-parallel engines deploy one instance per GPU behind
// the user-id router; TP/PP deploy a single instance spanning both GPUs.
#ifndef SRC_ENGINE_ENGINE_CONFIG_H_
#define SRC_ENGINE_ENGINE_CONFIG_H_

#include <cstdint>

#include "src/gpu/cost_model.h"
#include "src/gpu/memory_model.h"
#include "src/gpu/specs.h"
#include "src/sched/scheduler.h"
#include "src/tensor/ops_dispatch.h"

namespace prefillonly {

struct EngineConfig {
  EngineKind kind = EngineKind::kPrefillOnly;
  HardwareSetup hardware;

  // Scheduling. PrefillOnly defaults to SRJF with continuous JCT
  // calibration (Algorithm 1); every baseline uses vLLM's FCFS.
  SchedPolicy policy = SchedPolicy::kSrjfCalibrated;
  // Starvation offset, in JCT-estimator units per second of queueing. The
  // default estimator is the cache-miss-token proxy, so lambda = 500 means
  // one second of waiting outweighs 500 uncached tokens (paper default).
  double lambda = 500.0;

  int block_size = 256;
  // Intra-op CPU workers per instance; parity knob with
  // EngineOptions::num_threads (0 = hardware concurrency, 1 = serial) for
  // deployments that translate an EngineConfig into a real Engine. NOTE:
  // nothing in-tree does that translation yet — the analytic simulation
  // (instance.cc/cluster.cc) ignores this field, because its kernel timing
  // comes from the cost model, not real execution.
  int num_threads = 0;
  // Kernel backend; parity knob with EngineOptions::kernel_backend for
  // deployments that translate an EngineConfig into a real Engine. Like
  // num_threads, the analytic simulation ignores it (its kernel timing
  // comes from the cost model, not real execution).
  KernelBackend kernel_backend = KernelBackend::kAuto;
  // Intra-lane continuous batching (ISSUE 4); parity knob with
  // EngineOptions::max_batch_size (1 = every request prefills solo). The
  // analytic simulation ignores it like num_threads/kernel_backend — its
  // prefill timing comes from the cost model, which prices tokens, not
  // batch compositions.
  int max_batch_size = 1;
  // Batch-admission packing rule (ISSUE 9); parity knob with
  // EngineOptions::batch_packing. Ignored by the analytic simulation for
  // the same reason as max_batch_size.
  BatchPacking batch_packing = BatchPacking::kFirstFit;
  // Profile-run reserve (§3.1): activation memory is reserved for requests
  // up to this many tokens; what remains becomes the prefix-cache pool.
  // 0 = choose automatically: min(workload max length, engine MIL).
  int64_t reserve_tokens = 0;

  // CPU offload tier (§9): bytes of host memory for KV evicted from the
  // GPU pool. Offloaded prefix hits skip recomputation but pay a reload at
  // `offload_load_bandwidth` (pinned-host-to-device copy). 0 = discard
  // (the paper's default).
  double offload_bytes = 0.0;
  double offload_load_bandwidth = 40e9;

  MemoryModelConfig memory;
  CostModelConfig cost;

  static EngineConfig Make(EngineKind kind, HardwareSetup hardware) {
    EngineConfig config;
    config.kind = kind;
    config.hardware = std::move(hardware);
    if (kind != EngineKind::kPrefillOnly) {
      config.policy = SchedPolicy::kFifo;
    }
    return config;
  }
};

}  // namespace prefillonly

#endif  // SRC_ENGINE_ENGINE_CONFIG_H_
