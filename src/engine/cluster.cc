#include "src/engine/cluster.h"

#include <algorithm>
#include <memory>

#include "src/kvcache/prefix_cache.h"
#include "src/sim/simulation.h"
#include "src/workload/router.h"

namespace prefillonly {

namespace {

bool IsParallelKind(EngineKind kind) {
  return kind == EngineKind::kPipelineParallel || kind == EngineKind::kTensorParallel;
}

}  // namespace

ClusterResult RunCluster(const EngineConfig& config, const Dataset& dataset) {
  Simulation sim;

  EngineConfig effective = config;
  if (effective.reserve_tokens == 0) {
    effective.reserve_tokens = dataset.MaxTokens();
  }

  const int n_instances = IsParallelKind(config.kind) ? 1 : config.hardware.n_gpus;
  std::vector<std::unique_ptr<EngineInstance>> instances;
  instances.reserve(static_cast<size_t>(n_instances));
  for (int i = 0; i < n_instances; ++i) {
    instances.push_back(std::make_unique<EngineInstance>(
        sim, effective, std::string(EngineKindName(config.kind)) + "#" +
                            std::to_string(i)));
  }

  UserRoundRobinRouter router(n_instances);
  double first_arrival = 0.0;
  for (const SimRequest& request : dataset.requests) {
    first_arrival = std::min(first_arrival, request.arrival_time);
  }
  for (const SimRequest& request : dataset.requests) {
    EngineInstance* instance = instances[static_cast<size_t>(router.Route(request.user_id))].get();
    sim.Schedule(request.arrival_time, [instance, &request] { instance->Submit(request); });
  }
  sim.Run();

  ClusterResult result;
  result.engine = std::string(EngineKindName(config.kind));
  double last_completion = first_arrival;
  int64_t hit_tokens = 0;
  int64_t lookup_tokens = 0;
  for (const auto& instance : instances) {
    const InstanceStats& stats = instance->stats();
    result.submitted += stats.submitted;
    result.completed += stats.completed;
    result.rejected += stats.rejected;
    for (double latency : stats.latencies.samples()) {
      result.latencies.Add(latency);
    }
    last_completion = std::max(last_completion, stats.last_completion_s);
    hit_tokens += stats.scheduled_cached_tokens;
    lookup_tokens += stats.scheduled_tokens;
    result.offload_hit_tokens += stats.offload_hit_tokens;
  }
  if (result.latencies.count() > 0) {
    result.mean_latency_s = result.latencies.Mean();
    result.p99_latency_s = result.latencies.P99();
    result.max_latency_s = result.latencies.Max();
  }
  result.makespan_s = last_completion - first_arrival;
  if (result.makespan_s > 0) {
    result.throughput_rps = static_cast<double>(result.completed) / result.makespan_s;
  }
  if (lookup_tokens > 0) {
    result.cache_hit_rate =
        static_cast<double>(hit_tokens) / static_cast<double>(lookup_tokens);
  }
  return result;
}

double MeasureSaturatedThroughput(const EngineConfig& config, Dataset dataset) {
  AssignAllAtOnce(dataset);
  const ClusterResult result = RunCluster(config, dataset);
  return result.throughput_rps;
}

}  // namespace prefillonly
