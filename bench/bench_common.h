// Shared helpers for the reproduction benchmarks.
//
// Every bench binary is a no-argument executable that prints the rows or
// series of one table/figure from the paper. These helpers keep the output
// format consistent and factor the QPS-sweep loop shared by Figs. 6/7/9.
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/engine/cluster.h"
#include "src/engine/engine_config.h"
#include "src/gpu/memory_model.h"
#include "src/gpu/specs.h"
#include "src/workload/dataset.h"

namespace prefillonly::bench {

inline void Header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline const EngineKind kAllEngines[] = {
    EngineKind::kPrefillOnly, EngineKind::kPagedAttention,
    EngineKind::kChunkedPrefill, EngineKind::kPipelineParallel,
    EngineKind::kTensorParallel,
};

struct SweepPoint {
  double qps = 0.0;
  ClusterResult result;
};

struct SweepSeries {
  EngineKind kind;
  std::vector<SweepPoint> points;
};

// The paper's QPS grid (§7.2): anchor x = PrefillOnly's saturated
// throughput with all requests at once, then probe {x/4, x/2, x, 2x, 3x, 4x}.
inline std::vector<double> QpsGrid(const HardwareSetup& hw, const Dataset& dataset) {
  const double x = MeasureSaturatedThroughput(
      EngineConfig::Make(EngineKind::kPrefillOnly, hw), dataset);
  return {x / 4, x / 2, x, 2 * x, 3 * x, 4 * x};
}

inline Dataset WithArrivals(Dataset dataset, double qps, uint64_t seed) {
  if (dataset.name == "post-recommendation") {
    AssignUserBurstArrivals(dataset, qps, seed);
  } else {
    AssignPoissonArrivals(dataset, qps, seed);
  }
  return dataset;
}

// Runs every engine over the QPS grid on one hardware setup.
inline std::vector<SweepSeries> RunQpsSweep(const HardwareSetup& hw,
                                            const Dataset& dataset,
                                            const std::vector<double>& grid) {
  std::vector<SweepSeries> series;
  for (EngineKind kind : kAllEngines) {
    SweepSeries s;
    s.kind = kind;
    for (double qps : grid) {
      SweepPoint point;
      point.qps = qps;
      point.result =
          RunCluster(EngineConfig::Make(kind, hw), WithArrivals(dataset, qps, 1234));
      s.points.push_back(std::move(point));
    }
    series.push_back(std::move(s));
  }
  return series;
}

// Prints one figure panel: a column per engine, a row per QPS point.
// `metric` selects mean or P99 latency.
enum class LatencyMetric { kMean, kP99 };

inline void PrintLatencyPanel(const std::string& title,
                              const std::vector<SweepSeries>& series,
                              LatencyMetric metric) {
  std::printf("\n--- %s (%s latency, seconds; '-' = infeasible) ---\n", title.c_str(),
              metric == LatencyMetric::kMean ? "mean" : "P99");
  std::printf("%10s", "QPS");
  for (const auto& s : series) {
    std::printf("  %18s", std::string(EngineKindName(s.kind)).c_str());
  }
  std::printf("\n");
  const size_t n_points = series.empty() ? 0 : series[0].points.size();
  for (size_t row = 0; row < n_points; ++row) {
    std::printf("%10.3f", series[0].points[row].qps);
    for (const auto& s : series) {
      const auto& r = s.points[row].result;
      if (!r.Feasible()) {
        std::printf("  %18s", "-");
      } else {
        std::printf("  %18.2f", metric == LatencyMetric::kMean ? r.mean_latency_s
                                                               : r.p99_latency_s);
      }
    }
    std::printf("\n");
  }
}

}  // namespace prefillonly::bench

#endif  // BENCH_BENCH_COMMON_H_
