// Shared helpers for the reproduction benchmarks.
//
// Every bench binary is a no-argument executable that prints the rows or
// series of one table/figure from the paper. These helpers keep the output
// format consistent and factor the QPS-sweep loop shared by Figs. 6/7/9.
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "src/engine/cluster.h"
#include "src/engine/engine_config.h"
#include "src/gpu/memory_model.h"
#include "src/gpu/specs.h"
#include "src/loadgen/runner.h"
#include "src/loadgen/target.h"
#include "src/server/json.h"
#include "src/workload/dataset.h"

namespace prefillonly::bench {

inline void Header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline const EngineKind kAllEngines[] = {
    EngineKind::kPrefillOnly, EngineKind::kPagedAttention,
    EngineKind::kChunkedPrefill, EngineKind::kPipelineParallel,
    EngineKind::kTensorParallel,
};

struct SweepPoint {
  double qps = 0.0;
  ClusterResult result;
};

struct SweepSeries {
  EngineKind kind;
  std::vector<SweepPoint> points;
};

// The paper's QPS grid (§7.2): anchor x = PrefillOnly's saturated
// throughput with all requests at once, then probe {x/4, x/2, x, 2x, 3x, 4x}.
inline std::vector<double> QpsGrid(const HardwareSetup& hw, const Dataset& dataset) {
  const double x = MeasureSaturatedThroughput(
      EngineConfig::Make(EngineKind::kPrefillOnly, hw), dataset);
  return {x / 4, x / 2, x, 2 * x, 3 * x, 4 * x};
}

inline Dataset WithArrivals(Dataset dataset, double qps, uint64_t seed) {
  if (dataset.name == "post-recommendation") {
    AssignUserBurstArrivals(dataset, qps, seed);
  } else {
    AssignPoissonArrivals(dataset, qps, seed);
  }
  return dataset;
}

// Runs every engine over the QPS grid on one hardware setup.
inline std::vector<SweepSeries> RunQpsSweep(const HardwareSetup& hw,
                                            const Dataset& dataset,
                                            const std::vector<double>& grid) {
  std::vector<SweepSeries> series;
  for (EngineKind kind : kAllEngines) {
    SweepSeries s;
    s.kind = kind;
    for (double qps : grid) {
      SweepPoint point;
      point.qps = qps;
      point.result =
          RunCluster(EngineConfig::Make(kind, hw), WithArrivals(dataset, qps, 1234));
      s.points.push_back(std::move(point));
    }
    series.push_back(std::move(s));
  }
  return series;
}

// Prints one figure panel: a column per engine, a row per QPS point.
// `metric` selects mean or P99 latency.
enum class LatencyMetric { kMean, kP99 };

inline void PrintLatencyPanel(const std::string& title,
                              const std::vector<SweepSeries>& series,
                              LatencyMetric metric) {
  std::printf("\n--- %s (%s latency, seconds; '-' = infeasible) ---\n", title.c_str(),
              metric == LatencyMetric::kMean ? "mean" : "P99");
  std::printf("%10s", "QPS");
  for (const auto& s : series) {
    std::printf("  %18s", std::string(EngineKindName(s.kind)).c_str());
  }
  std::printf("\n");
  const size_t n_points = series.empty() ? 0 : series[0].points.size();
  for (size_t row = 0; row < n_points; ++row) {
    std::printf("%10.3f", series[0].points[row].qps);
    for (const auto& s : series) {
      const auto& r = s.points[row].result;
      if (!r.Feasible()) {
        std::printf("  %18s", "-");
      } else {
        std::printf("  %18.2f", metric == LatencyMetric::kMean ? r.mean_latency_s
                                                               : r.p99_latency_s);
      }
    }
    std::printf("\n");
  }
}

// --- Real-engine mode for the figure sweeps (ISSUE 10) ---------------------
//
// Fig. 6/7 are simulator studies (5 engine models, 4 GPU setups). With
// `--real` on the command line (or PO_FIG_REAL=1), the binaries ALSO sweep
// the repo's real CPU engine through the open-loop loadgen runner on the
// scaled Table-1 workloads, and both series land in the same JSON — the
// simulator panels unchanged, the real-engine curve alongside for a
// reality check of the simulated shape.

inline bool RealEngineRequested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--real") == 0) {
      return true;
    }
  }
  const char* env = std::getenv("PO_FIG_REAL");
  return env != nullptr && env[0] == '1';
}

// One simulator panel (one workload x one hardware setup) as JSON rows.
inline Json SimPanelJson(const Dataset& dataset, const HardwareSetup& hw,
                         const std::vector<SweepSeries>& series) {
  Json::Object panel;
  panel.emplace("workload", dataset.name);
  panel.emplace("hardware", hw.name);
  Json::Array engines;
  for (const auto& s : series) {
    Json::Object engine;
    engine.emplace("engine", std::string(EngineKindName(s.kind)));
    Json::Array rows;
    for (const auto& point : s.points) {
      Json::Object row;
      row.emplace("qps", point.qps);
      row.emplace("feasible", point.result.Feasible());
      row.emplace("mean_latency_s", point.result.mean_latency_s);
      row.emplace("p99_latency_s", point.result.p99_latency_s);
      rows.push_back(Json(std::move(row)));
    }
    engine.emplace("points", Json(std::move(rows)));
    engines.push_back(Json(std::move(engine)));
  }
  panel.emplace("engines", Json(std::move(engines)));
  return Json(std::move(panel));
}

// Real-engine sweep of one scaled workload (in-process target, anchored
// rate grid) for the figure JSON; prints a small panel as a side effect.
inline Json RealEngineSweepJson(const std::string& workload, uint64_t seed) {
  Dataset dataset =
      workload == "post-rec"
          ? MakePostRecommendationDataset(ScaledPostRecommendationConfig(seed))
          : MakeCreditVerificationDataset(ScaledCreditVerificationConfig(seed));
  std::vector<LoadItem> items;
  items.reserve(dataset.requests.size());
  for (SimRequest& request : dataset.requests) {
    LoadItem item;
    item.tokens = std::move(request.tokens);
    item.user_id = request.user_id;
    items.push_back(std::move(item));
  }

  ClientOptions client_options;
  client_options.model = "tiny";
  client_options.max_concurrent_requests = 2;
  client_options.max_batch_size = 4;
  auto target = MakeInProcessTarget(client_options);

  SweepOptions sweep_options;
  sweep_options.seed = seed;
  sweep_options.run.concurrency = 8;
  sweep_options.run.allowed = {7, 9};

  // Anchor the grid on measured saturation: all requests back to back, the
  // warm-up doubling as the cache warmer (same method as po_loadgen).
  const std::vector<double> all_at_once(items.size(), 0.0);
  const RunReport saturated = RunLoad(*target, items, all_at_once, sweep_options.run);
  // With every request scheduled at t=0, the slowest request's open-loop
  // latency IS the makespan, so ok/makespan is the saturated throughput.
  const double makespan = saturated.latency.Max();
  const double x = (saturated.ok > 0 && makespan > 0.0)
                       ? static_cast<double>(saturated.ok) / makespan
                       : 0.0;
  sweep_options.rates = x > 0.0 ? std::vector<double>{x / 4, x / 2, x, 2 * x}
                                : std::vector<double>{25.0, 50.0, 100.0};
  const SweepReport sweep = RunSweep(*target, workload, items, sweep_options);

  std::printf("\n--- %s / real CPU engine (loadgen, scaled workload) ---\n",
              workload.c_str());
  std::printf("%10s  %12s  %12s\n", "QPS", "mean (ms)", "p99 (ms)");
  for (const RatePoint& point : sweep.points) {
    std::printf("%10.2f  %12.3f  %12.3f\n", point.rate,
                point.report.latency.Mean() * 1e3,
                point.report.latency.Percentile(0.99) * 1e3);
  }
  return sweep.ToJson();
}

}  // namespace prefillonly::bench

#endif  // BENCH_BENCH_COMMON_H_
