// po_loadgen — open-loop SLO benchmark for the serving stack (ISSUE 10).
//
// Sweeps the two Table-1 workloads (scaled to CI size, raw tokens kept so
// the REAL CPU engine runs them) across a QPS grid against:
//
//   * the in-process target — the engine linked into this binary, and
//   * the remote target — the same engine behind the v1 HTTP API, either
//     self-hosted on an ephemeral port (the default) or an external server
//     via --endpoint.
//
// Each (workload, n_replicas, target) cell first measures the saturated
// throughput x (all requests back to back), then probes {x/4, x/2, x, 2x}
// — the paper's anchored-grid method — recording mean/p99 JCT, goodput,
// shed rate, and the SLO-attainment number "max QPS sustaining p99 <= D ms"
// per point, written as BENCH_slo.json.
//
// The binary is its own acceptance gate: it exits nonzero unless every
// sweep finished with ZERO lost requests (every dispatched request came
// back terminal) and a balanced engine ledger at every rate, with at least
// one successful completion per sweep. CI uploads the JSON and trusts the
// exit code.
//
// Flags (all --key=value):
//   --workload=post-rec|credit|both     default both
//   --target=inprocess|remote|both      default both
//   --endpoint=host:port                drive an external server (remote
//                                       target only; replica sweep skipped)
//   --replicas=1,2                      replica counts, default 1,2
//   --rates=2,4,8                       explicit QPS grid (skips anchoring)
//   --warmup-s=0.25  --concurrency=8  --slo-ms=500  --seed=42
//   --max-items=N                       cap requests per run (0 = all)
//   --out=BENCH_slo.json
//   --smoke                             one tiny sweep (~2 s), for
//                                       scripts/smoke_api.sh
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/loadgen/runner.h"
#include "src/loadgen/target.h"
#include "src/server/scoring_service.h"
#include "src/workload/dataset.h"

namespace {

using namespace prefillonly;

struct Flags {
  std::string workload = "both";
  std::string target = "both";
  std::string endpoint;
  std::vector<int> replicas = {1, 2};
  std::vector<double> rates;  // empty = anchor on measured saturation
  double warmup_s = 0.25;
  int concurrency = 8;
  double slo_ms = 500.0;
  uint64_t seed = 42;
  size_t max_items = 0;
  std::string out = "BENCH_slo.json";
  bool smoke = false;
};

std::vector<std::string> SplitCsv(const std::string& value) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= value.size()) {
    const size_t comma = value.find(',', start);
    parts.push_back(value.substr(
        start, (comma == std::string::npos ? value.size() : comma) - start));
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return parts;
}

bool ParseFlags(int argc, char** argv, Flags& flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* name) -> const char* {
      const size_t len = std::strlen(name);
      if (arg.compare(0, len, name) == 0 && arg.size() > len && arg[len] == '=') {
        return arg.c_str() + len + 1;
      }
      return nullptr;
    };
    if (arg == "--smoke") {
      flags.smoke = true;
    } else if (const char* v = value("--workload")) {
      flags.workload = v;
    } else if (const char* v = value("--target")) {
      flags.target = v;
    } else if (const char* v = value("--endpoint")) {
      flags.endpoint = v;
    } else if (const char* v = value("--replicas")) {
      flags.replicas.clear();
      for (const std::string& part : SplitCsv(v)) {
        flags.replicas.push_back(std::atoi(part.c_str()));
      }
    } else if (const char* v = value("--rates")) {
      flags.rates.clear();
      for (const std::string& part : SplitCsv(v)) {
        flags.rates.push_back(std::atof(part.c_str()));
      }
    } else if (const char* v = value("--warmup-s")) {
      flags.warmup_s = std::atof(v);
    } else if (const char* v = value("--concurrency")) {
      flags.concurrency = std::atoi(v);
    } else if (const char* v = value("--slo-ms")) {
      flags.slo_ms = std::atof(v);
    } else if (const char* v = value("--seed")) {
      flags.seed = static_cast<uint64_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value("--max-items")) {
      flags.max_items = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value("--out")) {
      flags.out = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

std::vector<LoadItem> BuildItems(const std::string& workload, uint64_t seed,
                                 size_t max_items) {
  Dataset dataset =
      workload == "post-rec"
          ? MakePostRecommendationDataset(ScaledPostRecommendationConfig(seed))
          : MakeCreditVerificationDataset(ScaledCreditVerificationConfig(seed));
  std::vector<LoadItem> items;
  items.reserve(dataset.requests.size());
  for (SimRequest& request : dataset.requests) {
    LoadItem item;
    item.tokens = std::move(request.tokens);
    item.user_id = request.user_id;
    items.push_back(std::move(item));
  }
  if (max_items > 0 && items.size() > max_items) {
    items.resize(max_items);
  }
  return items;
}

// The one engine configuration every cell uses — the facade options (for
// the in-process target) and the self-hosted server's EngineOptions are
// derived from it so in-process and remote score the SAME engine.
ClientOptions LoadgenClientOptions(int n_replicas) {
  ClientOptions options;
  options.model = "tiny";  // vocab 256 matches the scaled workloads
  options.max_concurrent_requests = 2;
  options.max_batch_size = 4;
  options.n_replicas = n_replicas;
  return options;
}

EngineOptions LoadgenEngineOptions() {
  EngineOptions options;
  options.model = ModelConfig::Tiny();
  options.max_concurrent_requests = 2;
  options.max_batch_size = 4;
  return options;
}

// Saturated throughput x of this target on this workload: all requests back
// to back (schedule all-zero, so the worker pool free-runs), x = n / wall.
// Also the cache warmer — after this, every sweep point sees steady state.
double MeasureSaturation(LoadTarget& target, const std::vector<LoadItem>& items,
                         const RunOptions& run_options) {
  const std::vector<double> schedule(items.size(), 0.0);
  RunOptions options = run_options;
  options.warmup_s = 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  const RunReport report = RunLoad(target, items, schedule, options);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  if (report.ok == 0 || wall <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(report.ok) / wall;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, flags)) {
    return 2;
  }

  std::vector<std::string> workloads;
  if (flags.workload == "both") {
    workloads = {"post-rec", "credit"};
  } else {
    workloads = {flags.workload};
  }
  std::vector<std::string> targets;
  if (flags.target == "both") {
    targets = {"inprocess", "remote"};
  } else {
    targets = {flags.target};
  }
  // An external endpoint fixes the server: only the remote target makes
  // sense and the replica sweep is the server's business, not ours.
  if (!flags.endpoint.empty()) {
    targets = {"remote"};
    flags.replicas = {0};  // 0 = "as deployed"
  }
  if (flags.smoke) {
    // One tiny cell, sized to finish in ~2 s: the smoke-script contract is
    // "nonzero completions, well-formed JSON, exit 0".
    workloads = {"post-rec"};
    if (flags.endpoint.empty()) {
      flags.replicas = {1};
    }
    if (flags.max_items == 0) {
      flags.max_items = 16;
    }
    if (flags.rates.empty()) {
      flags.rates = {16.0};
    }
    flags.warmup_s = 0.0;
  }

  bool gate_passed = true;
  Json::Array sweeps;

  for (const std::string& workload : workloads) {
    const std::vector<LoadItem> items =
        BuildItems(workload, flags.seed, flags.max_items);
    for (int n_replicas : flags.replicas) {
      for (const std::string& target_kind : targets) {
        // Self-hosted server for the remote target (unless --endpoint).
        std::unique_ptr<ScoringService> service;
        std::unique_ptr<LoadTarget> target;
        if (target_kind == "remote") {
          std::string endpoint = flags.endpoint;
          if (endpoint.empty()) {
            ScoringServiceOptions service_options;
            service_options.cluster.n_replicas = std::max(1, n_replicas);
            service = std::make_unique<ScoringService>(LoadgenEngineOptions(),
                                                       service_options);
            if (Status status = service->Start(0); !status.ok()) {
              std::fprintf(stderr, "cannot start self-hosted server: %s\n",
                           status.message().c_str());
              return 1;
            }
            endpoint = "127.0.0.1:" + std::to_string(service->port());
          }
          ClientOptions remote_options;
          remote_options.model = "tiny";
          target = MakeRemoteTarget(endpoint, remote_options);
        } else {
          target = MakeInProcessTarget(LoadgenClientOptions(std::max(1, n_replicas)));
        }

        SweepOptions sweep_options;
        sweep_options.seed = flags.seed;
        sweep_options.slo_p99_ms = flags.slo_ms;
        sweep_options.run.warmup_s = flags.warmup_s;
        sweep_options.run.concurrency = flags.concurrency;
        sweep_options.run.allowed = {7, 9};
        sweep_options.rates = flags.rates;
        if (sweep_options.rates.empty()) {
          const double x = MeasureSaturation(*target, items, sweep_options.run);
          if (x <= 0.0) {
            std::fprintf(stderr, "%s/%s N=%d: saturation run produced no "
                         "completions\n",
                         workload.c_str(), target_kind.c_str(), n_replicas);
            gate_passed = false;
            continue;
          }
          sweep_options.rates = {x / 4, x / 2, x, 2 * x};
        } else if (flags.warmup_s > 0.0 || flags.smoke) {
          // Explicit grid skips the anchoring run; still warm the engine so
          // the first point isn't charged cold caches.
          (void)MeasureSaturation(*target, items, sweep_options.run);
        }

        SweepReport sweep = RunSweep(*target, workload, items, sweep_options);
        sweep.n_replicas = n_replicas;
        gate_passed = gate_passed && sweep.GatePassed();
        bool any_ok = false;
        for (const RatePoint& point : sweep.points) {
          any_ok = any_ok || point.report.ok > 0;
        }
        if (!any_ok) {
          std::fprintf(stderr, "%s/%s N=%d: no successful completions\n",
                       workload.c_str(), target_kind.c_str(), n_replicas);
          gate_passed = false;
        }

        std::printf("%-9s %-9s N=%d  max_qps(p99<=%.0fms)=%.2f\n",
                    workload.c_str(), target_kind.c_str(), n_replicas,
                    flags.slo_ms, sweep.max_qps_slo);
        for (const RatePoint& point : sweep.points) {
          const RunReport& r = point.report;
          std::printf(
              "  rate=%8.2f qps  goodput=%8.2f  mean=%8.2fms  p99=%8.2fms  "
              "shed=%lld  lost=%lld  balance=%s\n",
              point.rate, r.goodput_qps, r.latency.Mean() * 1e3,
              r.latency.Percentile(0.99) * 1e3, static_cast<long long>(r.shed),
              static_cast<long long>(r.lost), r.BalanceOk() ? "ok" : "BROKEN");
        }
        sweeps.push_back(sweep.ToJson());

        if (service) {
          service->Stop();
        }
      }
    }
  }

  Json::Object report;
  report.emplace("benchmark", "slo_loadgen");
  report.emplace("slo_p99_ms", flags.slo_ms);
  report.emplace("seed", static_cast<int64_t>(flags.seed));
  report.emplace("smoke", flags.smoke);
  report.emplace("sweeps", Json(std::move(sweeps)));
  report.emplace("gate_passed", gate_passed);

  FILE* f = std::fopen(flags.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", flags.out.c_str());
    return 1;
  }
  const std::string serialized = Json(std::move(report)).Serialize();
  std::fprintf(f, "%s\n", serialized.c_str());
  std::fclose(f);
  std::printf("wrote %s (gate %s)\n", flags.out.c_str(),
              gate_passed ? "PASSED" : "FAILED");
  return gate_passed ? 0 : 1;
}
