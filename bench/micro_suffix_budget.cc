// Design-choice ablation: how the suffix-discard budget (prefix-cache size)
// trades memory for hit rate on the real CPU engine.
//
// One user's profile is scored against several posts under different cache
// budgets: a budget that covers the profile converts 11 of 12 requests into
// prefix hits; smaller budgets degrade gracefully (suffix KV discarding
// keeps the most valuable prefix blocks).
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/rng.h"
#include "src/core/engine.h"

int main() {
  using namespace prefillonly;
  bench::Header("Ablation - suffix-discard budget vs prefix hit rate (real engine)");

  const int64_t profile_len = 192;
  const int n_posts = 12;
  Rng rng(15);
  std::vector<int32_t> profile(profile_len);
  for (auto& t : profile) {
    t = static_cast<int32_t>(rng.NextBounded(256));
  }

  std::printf("\nprofile %ld tokens + %d posts of 8 tokens, block 16\n",
              static_cast<long>(profile_len), n_posts);
  std::printf("%16s %14s %14s %16s\n", "budget (tokens)", "hit rate", "cache MB",
              "mean n_cached");
  for (int64_t budget : {0, 32, 64, 128, 192, 256, 512}) {
    EngineOptions options;
    options.model = ModelConfig::Tiny();
    options.block_size = 16;
    options.chunk_size = 32;
    options.cache_budget_tokens = budget;
    Engine engine(options);

    double total_cached = 0;
    for (int p = 0; p < n_posts; ++p) {
      auto tokens = profile;
      for (int j = 0; j < 8; ++j) {
        tokens.push_back(static_cast<int32_t>(rng.NextBounded(256)));
      }
      ScoringRequest request;
      request.tokens = std::move(tokens);
      request.allowed_tokens = {10, 20};
      auto response = engine.ScoreSync(std::move(request));
      if (response.ok()) {
        total_cached += static_cast<double>(response.value().n_cached);
      }
    }
    const auto stats = engine.stats();
    std::printf("%16ld %13.1f%% %14.3f %16.1f\n", static_cast<long>(budget),
                stats.cache.HitRate() * 100.0,
                static_cast<double>(stats.cache_bytes) / 1e6, total_cached / n_posts);
  }
  std::printf(
      "\n-> a budget covering the shared profile captures nearly all reuse;\n"
      "   beyond it, extra cache buys nothing (the suffix is never reused).\n");
  return 0;
}
