// google-benchmark microbenchmarks for the hot paths of the library:
// tensor kernels, prefix-cache operations, scheduler decisions and the
// end-to-end CPU prefill. These are engineering benchmarks (regression
// tracking), not paper reproductions.
#include <benchmark/benchmark.h>

#include <vector>

#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/kvcache/prefix_cache.h"
#include "src/model/llama.h"
#include "src/sched/scheduler.h"
#include "src/tensor/ops.h"
#include "src/tensor/tracking_allocator.h"

namespace {

using namespace prefillonly;

void BM_MatMul(benchmark::State& state) {
  const int64_t m = state.range(0);
  const int64_t k = 256;
  const int64_t n = 256;
  Rng rng(1);
  std::vector<float> a(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * n));
  std::vector<float> c(static_cast<size_t>(m * n));
  for (auto& v : a) {
    v = rng.NextUniformFloat(1.0f);
  }
  for (auto& v : b) {
    v = rng.NextUniformFloat(1.0f);
  }
  for (auto _ : state) {
    MatMul(a.data(), b.data(), c.data(), m, k, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * k * n * 2);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(128)->Arg(512);

void BM_RmsNorm(benchmark::State& state) {
  const int64_t m = state.range(0);
  const int64_t h = 256;
  Rng rng(2);
  std::vector<float> x(static_cast<size_t>(m * h));
  std::vector<float> w(static_cast<size_t>(h), 1.0f);
  std::vector<float> y(static_cast<size_t>(m * h));
  for (auto& v : x) {
    v = rng.NextUniformFloat(1.0f);
  }
  for (auto _ : state) {
    RmsNormRows(x.data(), w.data(), y.data(), m, h);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_RmsNorm)->Arg(128)->Arg(1024);

void BM_BlockHashChain(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(3);
  std::vector<int32_t> tokens(static_cast<size_t>(n));
  for (auto& t : tokens) {
    t = static_cast<int32_t>(rng.NextBounded(32000));
  }
  for (auto _ : state) {
    auto chain = BlockHashChain(tokens, 256);
    benchmark::DoNotOptimize(chain.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BlockHashChain)->Arg(14000)->Arg(60000);

void BM_PrefixCacheAcquireRelease(benchmark::State& state) {
  PrefixCache cache(256, 1024);
  Rng rng(4);
  std::vector<std::vector<uint64_t>> chains;
  for (int i = 0; i < 64; ++i) {
    std::vector<uint64_t> chain;
    for (int b = 0; b < 56; ++b) {
      chain.push_back(rng.NextU64());
    }
    chains.push_back(std::move(chain));
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& chain = chains[i++ % chains.size()];
    auto acq = cache.Acquire(chain, static_cast<int64_t>(chain.size()) + 1);
    if (acq.ok()) {
      cache.Release(acq.value(), static_cast<int64_t>(chain.size()));
    }
  }
}
BENCHMARK(BM_PrefixCacheAcquireRelease);

void BM_SchedulerPickNext(benchmark::State& state) {
  const size_t queue_len = static_cast<size_t>(state.range(0));
  CacheMissProxyEstimator proxy;
  Scheduler sched(SchedPolicy::kSrjfCalibrated, 500.0, &proxy);
  Rng rng(5);
  std::vector<SchedEntry> queue(queue_len);
  for (auto& e : queue) {
    e.arrival_time = rng.NextDouble() * 100;
    e.n_input = static_cast<int64_t>(rng.NextBounded(60000)) + 1;
    e.n_cached_now = static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(e.n_input)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.PickNext(queue, 101.0));
  }
}
BENCHMARK(BM_SchedulerPickNext)->Arg(16)->Arg(256)->Arg(4096);

void BM_PrefillHybridTiny(benchmark::State& state) {
  static const LlamaModel* model = new LlamaModel(ModelConfig::Tiny(), 7);
  Rng rng(6);
  std::vector<int32_t> tokens(static_cast<size_t>(state.range(0)));
  for (auto& t : tokens) {
    t = static_cast<int32_t>(
        rng.NextBounded(static_cast<uint64_t>(model->config().vocab_size)));
  }
  TrackingAllocator act;
  PrefillOptions options;
  options.mode = PrefillMode::kHybrid;
  options.chunk_size = 32;
  for (auto _ : state) {
    auto result = model->Prefill(tokens, nullptr, options, act);
    benchmark::DoNotOptimize(result.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PrefillHybridTiny)->Arg(64)->Arg(256);

}  // namespace
