// Kernel microbenchmarks.
//
// Two jobs:
//  1. Always: a hand-rolled GFLOP/s + GB/s sweep over the hot kernels — the
//     seed scalar MatMul (with its `a_val == 0` skip), the retained scalar
//     reference, and EVERY available kernel backend (scalar, avx2 where the
//     host supports it; ISSUE 3) at 1/2/4/8 threads, dense and prepacked
//     GEMM variants, plus the RoPE recompute-vs-table pair — written
//     machine-readably to BENCH_kernels.json (and echoed as a table).
//     docs/PERFORMANCE.md and the CI regression check read this file; a
//     copy is checked into the repo root so the perf trajectory is
//     diffable per PR.
//  2. With google-benchmark available (PO_HAVE_GBENCH) and `--gbench`:
//     the original regression-tracking microbenchmarks over tensor kernels,
//     prefix-cache operations, scheduler decisions and end-to-end prefill.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/kvcache/prefix_cache.h"
#include "src/model/llama.h"
#include "src/model/rope_table.h"
#include "src/sched/scheduler.h"
#include "src/tensor/ops.h"
#include "src/tensor/ops_dispatch.h"
#include "src/tensor/ops_ref.h"
#include "src/tensor/prepack.h"
#include "src/tensor/tracking_allocator.h"

#ifdef PO_HAVE_GBENCH
#include <benchmark/benchmark.h>
#endif

namespace {

using namespace prefillonly;

// ------------------------------------------------------------ JSON sweep

// The seed kernel, verbatim (including the sparsity skip the rewrite
// removed): the baseline every speedup in the JSON is measured against.
void SeedMatMul(const float* a, const float* b, float* c, int64_t m, int64_t k,
                int64_t n) {
  std::memset(c, 0, static_cast<size_t>(m) * n * sizeof(float));
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float a_val = a_row[kk];
      if (a_val == 0.0f) {
        continue;
      }
      const float* b_row = b + kk * n;
      for (int64_t j = 0; j < n; ++j) {
        c_row[j] += a_val * b_row[j];
      }
    }
  }
}

// Best-of-reps wall time of fn(), with enough inner iterations to pass
// min_seconds per rep.
template <typename Fn>
double TimeSeconds(const Fn& fn, double min_seconds = 0.1, int reps = 3) {
  using Clock = std::chrono::steady_clock;
  // Warm-up + calibration.
  auto t0 = Clock::now();
  fn();
  double once = std::chrono::duration<double>(Clock::now() - t0).count();
  const int iters = once > 0 ? std::max(1, static_cast<int>(min_seconds / once)) : 1;
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    t0 = Clock::now();
    for (int it = 0; it < iters; ++it) {
      fn();
    }
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - t0).count() / iters;
    best = std::min(best, elapsed);
  }
  return best;
}

struct KernelPoint {
  std::string kernel;
  std::string variant;
  std::string backend;  // executing backend; "shared" = backend-independent
  int threads;
  double gflops;
  double gbps;  // nominal traffic (inputs read once + outputs written once)
  double seconds;
};

// Kernel backends available on this host, in fixed sweep order.
std::vector<const KernelOps*> AvailableBackends() {
  std::vector<const KernelOps*> backends = {GetKernelOps(KernelBackend::kScalar)};
  if (Avx2Available()) {
    backends.push_back(GetKernelOps(KernelBackend::kAvx2));
  }
  return backends;
}

void RunJsonSweep(const char* json_path) {
  std::vector<KernelPoint> points;
  const std::vector<int> thread_counts = {1, 2, 4, 8};
  const auto backends = AvailableBackends();

  // Single-thread MatMul GFLOP/s per (backend, variant) at the headline
  // shape, for the speedup summary.
  double st_scalar_blocked = 0.0;
  double st_best = 0.0;
  std::string st_best_name;

  // MatMul at an engine-ish shape (chunk of 256 tokens, hidden 512 — the
  // model's GEMM regime: every projection is [chunk, h] x [h, width]).
  {
    const int64_t m = 256;
    const int64_t k = 512;
    const int64_t n = 512;
    const double flops = 2.0 * m * k * n;
    const double bytes = 4.0 * (m * k + k * n + m * n);
    Rng rng(1);
    std::vector<float> a(static_cast<size_t>(m * k));
    std::vector<float> b(static_cast<size_t>(k * n));
    std::vector<float> c(static_cast<size_t>(m * n));
    for (auto& v : a) {
      v = rng.NextUniformFloat(1.0f);
    }
    for (auto& v : b) {
      v = rng.NextUniformFloat(1.0f);
    }
    TrackingAllocator pack_alloc;
    const PackedMatrix packed = PackWeights(pack_alloc, b.data(), k, n, "bench.pack");

    double s = TimeSeconds([&] { SeedMatMul(a.data(), b.data(), c.data(), m, k, n); });
    points.push_back(
        {"matmul", "seed_scalar", "scalar", 1, flops / s * 1e-9, bytes / s * 1e-9, s});
    s = TimeSeconds([&] { ref::MatMul(a.data(), b.data(), c.data(), m, k, n); });
    points.push_back(
        {"matmul", "ref_scalar", "scalar", 1, flops / s * 1e-9, bytes / s * 1e-9, s});
    for (const KernelOps* ops : backends) {
      for (int t : thread_counts) {
        ThreadPool pool(t);
        s = TimeSeconds(
            [&] { MatMul(a.data(), b.data(), c.data(), m, k, n, &pool, ops); });
        points.push_back({"matmul", "blocked", ops->name, t, flops / s * 1e-9,
                          bytes / s * 1e-9, s});
        if (t == 1 && ops->backend == KernelBackend::kScalar) {
          st_scalar_blocked = flops / s * 1e-9;
        }
        if (t == 1 && flops / s * 1e-9 > st_best) {
          st_best = flops / s * 1e-9;
          st_best_name = std::string(ops->name) + "/blocked";
        }
        s = TimeSeconds([&] { MatMulPacked(a.data(), packed, c.data(), m, &pool, ops); });
        points.push_back({"matmul", "packed", ops->name, t, flops / s * 1e-9,
                          bytes / s * 1e-9, s});
        if (t == 1 && flops / s * 1e-9 > st_best) {
          st_best = flops / s * 1e-9;
          st_best_name = std::string(ops->name) + "/packed";
        }
      }
    }
  }

  // RoPE: recompute (seed) vs precomputed table; shared across backends
  // (not dispatched — both backends rotate identically, by design). ~6
  // arithmetic ops per rotated pair; the seed path additionally pays
  // pow/cos/sin per element.
  {
    const int64_t rows = 512;
    const int64_t n_heads = 8;
    const int64_t head_dim = 64;
    const double flops = 6.0 * rows * n_heads * (head_dim / 2);
    const double bytes = 2.0 * 4.0 * rows * n_heads * head_dim;  // x read+write
    Rng rng(2);
    std::vector<float> x(static_cast<size_t>(rows * n_heads * head_dim));
    for (auto& v : x) {
      v = rng.NextUniformFloat(1.0f);
    }
    std::vector<int32_t> positions(static_cast<size_t>(rows));
    for (int64_t i = 0; i < rows; ++i) {
      positions[static_cast<size_t>(i)] = static_cast<int32_t>(i);
    }
    double s = TimeSeconds(
        [&] { ref::ApplyRope(x.data(), rows, n_heads, head_dim, positions, 10000.0f); });
    points.push_back(
        {"rope", "seed_recompute", "shared", 1, flops / s * 1e-9, bytes / s * 1e-9, s});
    RopeTable table(head_dim, 10000.0f);
    table.EnsureCapacity(rows);
    for (int t : thread_counts) {
      ThreadPool pool(t);
      s = TimeSeconds(
          [&] { ApplyRopeWithTable(x.data(), rows, n_heads, head_dim, positions, table,
                                   &pool); });
      points.push_back(
          {"rope", "table", "shared", t, flops / s * 1e-9, bytes / s * 1e-9, s});
    }
  }

  // RMSNorm rows.
  {
    const int64_t m = 2048;
    const int64_t h = 512;
    const double flops = 4.0 * m * h;
    const double bytes = 4.0 * (2.0 * m * h + h);  // x read, y written, w read
    Rng rng(3);
    std::vector<float> x(static_cast<size_t>(m * h));
    std::vector<float> w(static_cast<size_t>(h), 1.0f);
    std::vector<float> y(static_cast<size_t>(m * h));
    for (auto& v : x) {
      v = rng.NextUniformFloat(1.0f);
    }
    double s = TimeSeconds([&] { ref::RmsNormRows(x.data(), w.data(), y.data(), m, h); });
    points.push_back(
        {"rmsnorm", "ref_scalar", "scalar", 1, flops / s * 1e-9, bytes / s * 1e-9, s});
    for (const KernelOps* ops : backends) {
      for (int t : thread_counts) {
        ThreadPool pool(t);
        s = TimeSeconds(
            [&] { RmsNormRows(x.data(), w.data(), y.data(), m, h, 1e-5f, &pool, ops); });
        points.push_back({"rmsnorm", "row_parallel", ops->name, t, flops / s * 1e-9,
                          bytes / s * 1e-9, s});
      }
    }
  }

  // SwiGLU rows.
  {
    const int64_t m = 1024;
    const int64_t inter = 896;
    const double flops = 6.0 * m * inter;  // exp counted as one
    const double bytes = 4.0 * (m * 2 * inter + m * inter);
    Rng rng(4);
    std::vector<float> gate_up(static_cast<size_t>(m * 2 * inter));
    std::vector<float> out(static_cast<size_t>(m * inter));
    for (auto& v : gate_up) {
      v = rng.NextUniformFloat(1.0f);
    }
    double s = TimeSeconds([&] { ref::SwiGluRows(gate_up.data(), out.data(), m, inter); });
    points.push_back(
        {"swiglu", "ref_scalar", "scalar", 1, flops / s * 1e-9, bytes / s * 1e-9, s});
    for (const KernelOps* ops : backends) {
      for (int t : thread_counts) {
        ThreadPool pool(t);
        s = TimeSeconds(
            [&] { SwiGluRows(gate_up.data(), out.data(), m, inter, &pool, ops); });
        points.push_back({"swiglu", "row_parallel", ops->name, t, flops / s * 1e-9,
                          bytes / s * 1e-9, s});
      }
    }
  }

  std::printf("%-10s %-16s %-8s %8s %12s %12s %12s\n", "kernel", "variant",
              "backend", "threads", "GFLOP/s", "GB/s", "sec/call");
  for (const auto& p : points) {
    std::printf("%-10s %-16s %-8s %8d %12.3f %12.3f %12.6f\n", p.kernel.c_str(),
                p.variant.c_str(), p.backend.c_str(), p.threads, p.gflops, p.gbps,
                p.seconds);
  }
  if (st_scalar_blocked > 0.0 && !st_best_name.empty()) {
    std::printf(
        "\nsingle-thread matmul (m=256,k=512,n=512): best %s at %.2f GFLOP/s = "
        "%.2fx the scalar blocked kernel (%.2f GFLOP/s)\n",
        st_best_name.c_str(), st_best, st_best / st_scalar_blocked,
        st_scalar_blocked);
  }

  FILE* f = std::fopen(json_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return;
  }
  std::fprintf(f, "{\n  \"avx2_available\": %s,\n  \"kernels\": [\n",
               Avx2Available() ? "true" : "false");
  for (size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"variant\": \"%s\", \"backend\": \"%s\", "
                 "\"threads\": %d, \"gflops\": %.4f, \"gbps\": %.4f, "
                 "\"seconds_per_call\": %.6g}%s\n",
                 p.kernel.c_str(), p.variant.c_str(), p.backend.c_str(), p.threads,
                 p.gflops, p.gbps, p.seconds, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", json_path);
}

// ------------------------------------------------- google-benchmark suite

#ifdef PO_HAVE_GBENCH

void BM_MatMul(benchmark::State& state) {
  const int64_t m = state.range(0);
  const int64_t k = 256;
  const int64_t n = 256;
  Rng rng(1);
  std::vector<float> a(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * n));
  std::vector<float> c(static_cast<size_t>(m * n));
  for (auto& v : a) {
    v = rng.NextUniformFloat(1.0f);
  }
  for (auto& v : b) {
    v = rng.NextUniformFloat(1.0f);
  }
  for (auto _ : state) {
    MatMul(a.data(), b.data(), c.data(), m, k, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * k * n * 2);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(128)->Arg(512);

void BM_MatMulThreaded(benchmark::State& state) {
  const int64_t m = 512;
  const int64_t k = 256;
  const int64_t n = 256;
  ThreadPool pool(static_cast<int>(state.range(0)));
  Rng rng(1);
  std::vector<float> a(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * n));
  std::vector<float> c(static_cast<size_t>(m * n));
  for (auto& v : a) {
    v = rng.NextUniformFloat(1.0f);
  }
  for (auto& v : b) {
    v = rng.NextUniformFloat(1.0f);
  }
  for (auto _ : state) {
    MatMul(a.data(), b.data(), c.data(), m, k, n, &pool);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * k * n * 2);
}
BENCHMARK(BM_MatMulThreaded)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_RmsNorm(benchmark::State& state) {
  const int64_t m = state.range(0);
  const int64_t h = 256;
  Rng rng(2);
  std::vector<float> x(static_cast<size_t>(m * h));
  std::vector<float> w(static_cast<size_t>(h), 1.0f);
  std::vector<float> y(static_cast<size_t>(m * h));
  for (auto& v : x) {
    v = rng.NextUniformFloat(1.0f);
  }
  for (auto _ : state) {
    RmsNormRows(x.data(), w.data(), y.data(), m, h);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_RmsNorm)->Arg(128)->Arg(1024);

void BM_BlockHashChain(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(3);
  std::vector<int32_t> tokens(static_cast<size_t>(n));
  for (auto& t : tokens) {
    t = static_cast<int32_t>(rng.NextBounded(32000));
  }
  for (auto _ : state) {
    auto chain = BlockHashChain(tokens, 256);
    benchmark::DoNotOptimize(chain.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BlockHashChain)->Arg(14000)->Arg(60000);

void BM_PrefixCacheAcquireRelease(benchmark::State& state) {
  PrefixCache cache(256, 1024);
  Rng rng(4);
  std::vector<std::vector<uint64_t>> chains;
  for (int i = 0; i < 64; ++i) {
    std::vector<uint64_t> chain;
    for (int b = 0; b < 56; ++b) {
      chain.push_back(rng.NextU64());
    }
    chains.push_back(std::move(chain));
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& chain = chains[i++ % chains.size()];
    auto acq = cache.Acquire(chain, static_cast<int64_t>(chain.size()) + 1);
    if (acq.ok()) {
      cache.Release(acq.value(), static_cast<int64_t>(chain.size()));
    }
  }
}
BENCHMARK(BM_PrefixCacheAcquireRelease);

void BM_SchedulerPickNext(benchmark::State& state) {
  const size_t queue_len = static_cast<size_t>(state.range(0));
  CacheMissProxyEstimator proxy;
  Scheduler sched(SchedPolicy::kSrjfCalibrated, 500.0, &proxy);
  Rng rng(5);
  std::vector<SchedEntry> queue(queue_len);
  for (auto& e : queue) {
    e.arrival_time = rng.NextDouble() * 100;
    e.n_input = static_cast<int64_t>(rng.NextBounded(60000)) + 1;
    e.n_cached_now = static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(e.n_input)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.PickNext(queue, 101.0));
  }
}
BENCHMARK(BM_SchedulerPickNext)->Arg(16)->Arg(256)->Arg(4096);

void BM_PrefillHybridTiny(benchmark::State& state) {
  static const LlamaModel* model = new LlamaModel(ModelConfig::Tiny(), 7);
  Rng rng(6);
  std::vector<int32_t> tokens(static_cast<size_t>(state.range(0)));
  for (auto& t : tokens) {
    t = static_cast<int32_t>(
        rng.NextBounded(static_cast<uint64_t>(model->config().vocab_size)));
  }
  TrackingAllocator act;
  PrefillOptions options;
  options.mode = PrefillMode::kHybrid;
  options.chunk_size = 32;
  for (auto _ : state) {
    auto result = model->Prefill(tokens, nullptr, options, act);
    benchmark::DoNotOptimize(result.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PrefillHybridTiny)->Arg(64)->Arg(256);

#endif  // PO_HAVE_GBENCH

}  // namespace

int main(int argc, char** argv) {
  bool gbench = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--gbench") {
      gbench = true;
      // Shift the flag out so google-benchmark sees only its own args.
      for (int j = i; j + 1 < argc; ++j) {
        argv[j] = argv[j + 1];
      }
      --argc;
      break;
    }
  }
  if (!gbench) {
    RunJsonSweep("BENCH_kernels.json");
    return 0;
  }
#ifdef PO_HAVE_GBENCH
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
#else
  std::fprintf(stderr, "built without google-benchmark; --gbench unavailable\n");
  return 1;
#endif
}
