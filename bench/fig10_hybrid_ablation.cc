// Fig. 10: how each hybrid-prefilling optimization moves the maximum input
// length, on Qwen-32B (fp8) + one A100 40GB — the paper's ablation:
// vanilla vLLM -> chunked prefill (hurts performance) -> hybrid chunking
// -> + output preallocation -> + in-place computation (7.9x vanilla).
//
// Also reproduced MEASURED on the real CPU engine: the same ablation as
// peak activation bytes for a 512-token prefill of the scaled model.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/rng.h"
#include "src/gpu/memory_model.h"
#include "src/model/llama.h"

int main() {
  using namespace prefillonly;
  bench::Header("Fig. 10 - hybrid prefilling ablation");

  const auto hw = HardwareSetup::A100_Qwen32B();
  std::printf("\n[A] MODELED max input length, %s on 1x %s\n", hw.llm.name.c_str(),
              hw.gpu.name.c_str());

  auto mil_hybrid = [&](bool prealloc, bool in_place) {
    MemoryModelConfig config;
    config.hybrid_preallocate = prealloc;
    config.hybrid_in_place = in_place;
    MemoryModel mem(hw.llm, hw.gpu, config);
    return mem.MaxInputLength(EngineKind::kPrefillOnly);
  };
  MemoryModel base(hw.llm, hw.gpu);
  const long vanilla = base.MaxInputLength(EngineKind::kPagedAttention);
  const long chunked = base.MaxInputLength(EngineKind::kChunkedPrefill);
  const long h_chunk = mil_hybrid(false, false);
  const long h_pre = mil_hybrid(true, false);
  const long h_ip = mil_hybrid(true, true);

  struct Row {
    const char* name;
    long mil;
  } rows[] = {
      {"Vanilla vLLM (paged)", vanilla},
      {"Chunked prefill (hurts perf)", chunked},
      {"Hybrid: chunking", h_chunk},
      {"Hybrid: + preallocation", h_pre},
      {"Hybrid: + in-place", h_ip},
  };
  for (const auto& row : rows) {
    std::printf("  %-30s %8ld tokens  (%.1fx vanilla) |%s\n", row.name, row.mil,
                static_cast<double>(row.mil) / vanilla,
                std::string(static_cast<size_t>(row.mil / 4000), '#').c_str());
  }
  std::printf("  paper: full hybrid reaches 7.9x vanilla vLLM\n");

  std::printf("\n[B] MEASURED peak activation bytes, scaled model, 512 tokens\n");
  LlamaModel model(ModelConfig::Small(), 9);
  Rng rng(10);
  std::vector<int32_t> tokens(512);
  for (auto& t : tokens) {
    t = static_cast<int32_t>(
        rng.NextBounded(static_cast<uint64_t>(model.config().vocab_size)));
  }
  auto peak = [&](PrefillMode mode, bool prealloc, bool in_place) -> double {
    TrackingAllocator alloc;
    PrefillOptions options;
    options.mode = mode;
    options.chunk_size = 32;
    options.preallocate_outputs = prealloc;
    options.in_place = in_place;
    auto result = model.Prefill(tokens, nullptr, options, alloc);
    if (!result.ok()) {
      return 0.0;
    }
    return static_cast<double>(alloc.peak_bytes());
  };
  const double std_peak = peak(PrefillMode::kStandard, true, true);
  std::printf("  %-30s %8.2f MB\n", "Standard (vanilla)", std_peak / 1e6);
  std::printf("  %-30s %8.2f MB\n", "Hybrid: chunking",
              peak(PrefillMode::kHybrid, false, false) / 1e6);
  std::printf("  %-30s %8.2f MB\n", "Hybrid: + preallocation",
              peak(PrefillMode::kHybrid, true, false) / 1e6);
  std::printf("  %-30s %8.2f MB\n", "Hybrid: + in-place",
              peak(PrefillMode::kHybrid, true, true) / 1e6);
  return 0;
}
