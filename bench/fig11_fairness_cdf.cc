// Fig. 11: CDF of request latency under different starvation offsets
// lambda in {0, 200, 2000}. Higher lambda trades average latency for tail
// latency: pure SRJF (lambda = 0) starves long requests under load; strong
// aging approaches FIFO.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace prefillonly;
  using namespace prefillonly::bench;
  Header("Fig. 11 - latency CDF vs fairness parameter lambda");

  const auto hw = HardwareSetup::H100_Llama70B();
  Dataset dataset = MakePostRecommendationDataset({});
  // Overload the engine so scheduling order matters for the tail.
  const double x = MeasureSaturatedThroughput(
      EngineConfig::Make(EngineKind::kPrefillOnly, hw), dataset);
  const double qps = 2.0 * x;

  const double lambdas[] = {0.0, 200.0, 2000.0};
  std::vector<ClusterResult> results;
  for (double lambda : lambdas) {
    EngineConfig config = EngineConfig::Make(EngineKind::kPrefillOnly, hw);
    config.lambda = lambda;
    results.push_back(RunCluster(config, WithArrivals(dataset, qps, 21)));
  }

  std::printf("\npost recommendation at %.1f QPS (2x saturation), 2x H100\n\n", qps);
  std::printf("%10s", "CDF");
  for (double lambda : lambdas) {
    std::printf("  lambda=%-8.0f", lambda);
  }
  std::printf("\n");
  for (double pct : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0}) {
    std::printf("%9.0f%%", pct);
    for (const auto& r : results) {
      std::printf("  %13.2fs", r.latencies.Percentile(pct));
    }
    std::printf("\n");
  }
  std::printf("\n%10s", "mean");
  for (const auto& r : results) {
    std::printf("  %13.2fs", r.mean_latency_s);
  }
  std::printf("\n\npaper: higher lambda -> better P99, worse average.\n");
  return 0;
}
