// §2.3 micro-claim: on one H100 with Llama-3.1-8B, serving a request with
// 2048 input tokens and 256 output tokens is ~1.5x the service demand of
// the same input with a single output token (decode amortized over a
// continuous batch, as the paper's measurement setup implies).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/gpu/cost_model.h"

int main() {
  using namespace prefillonly;
  bench::Header("Micro (2.3) - prefill-only vs 256-token generation");

  CostModel cost(LlmSpec::Llama31_8B(), GpuSpec::H100_80G());
  const double prefill = cost.PrefillTime(2048, 0, PassStrategy::kStandard, 0);
  std::printf("\n2048-token prefill (one output token): %.1f ms\n", prefill * 1e3);
  std::printf("\n%8s %22s %12s\n", "batch", "+256 decode tokens", "slowdown");
  for (int batch : {1, 16, 64, 256}) {
    const double decode_demand = 256.0 * cost.DecodeStepTime(batch) / batch;
    std::printf("%8d %20.1fms %11.2fx\n", batch, (prefill + decode_demand) * 1e3,
                (prefill + decode_demand) / prefill);
  }
  std::printf(
      "\npaper: 1.5x slower with 256 output tokens (matches the continuous-\n"
      "batching regime around batch 64); prefill-only avoids all of it.\n");
  return 0;
}
