// Table 1: the two evaluation datasets and their shapes.
//
// Regenerates the summary row for each dataset from the actual generators
// in src/workload, so the numbers printed here are the numbers every other
// benchmark runs on.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/workload/dataset.h"

int main() {
  using namespace prefillonly;
  bench::Header("Table 1 - evaluation datasets (regenerated)");

  {
    const Dataset data = MakePostRecommendationDataset({});
    int64_t min_profile = 1 << 30;
    int64_t max_profile = 0;
    for (const auto& r : data.requests) {
      min_profile = std::min(min_profile, r.n_tokens - 150);
      max_profile = std::max(max_profile, r.n_tokens - 150);
    }
    std::printf(
        "\nPost recommendation   (paper: 20 users, 11k-17k profile, 150-token "
        "posts,\n                       50 req/user, 14,000,000 tokens)\n");
    std::printf("  users:              %ld\n", static_cast<long>(data.UserCount()));
    std::printf("  profile length:     %ld - %ld tokens\n",
                static_cast<long>(min_profile), static_cast<long>(max_profile));
    std::printf("  post length:        150 tokens\n");
    std::printf("  requests per user:  %.0f\n", data.RequestsPerUser());
    std::printf("  total tokens:       %ld\n", static_cast<long>(data.TotalTokens()));
  }

  {
    const Dataset data = MakeCreditVerificationDataset({});
    int64_t min_len = 1 << 30;
    int64_t max_len = 0;
    for (const auto& r : data.requests) {
      min_len = std::min(min_len, r.n_tokens);
      max_len = std::max(max_len, r.n_tokens);
    }
    std::printf(
        "\nCredit verification   (paper: 60 users, 40k-60k tokens, 1 req/user,\n"
        "                       3,000,000 tokens)\n");
    std::printf("  users:              %ld\n", static_cast<long>(data.UserCount()));
    std::printf("  input length:       %ld - %ld tokens\n",
                static_cast<long>(min_len), static_cast<long>(max_len));
    std::printf("  requests per user:  %.0f\n", data.RequestsPerUser());
    std::printf("  total tokens:       %ld\n", static_cast<long>(data.TotalTokens()));
  }
  return 0;
}
