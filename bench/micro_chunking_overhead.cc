// §2.5 micro-claims:
//  * chunked prefill lowers end-to-end throughput by ~14% when chunking a
//    20,000-token input at chunk size 512;
//  * naive KV dropping (keep one layer, still full-width linear layers)
//    raises the max input length by only ~1.6x (L4 + Llama-3.1-8B).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/gpu/cost_model.h"
#include "src/gpu/memory_model.h"

int main() {
  using namespace prefillonly;
  bench::Header("Micro (2.5) - chunked prefill cost & naive KV-drop gain");

  const auto hw = HardwareSetup::L4_Llama8B();
  CostModel cost(hw.llm, hw.gpu);
  std::printf("\n[A] chunked prefill slowdown, 20,000-token request (%s, %s)\n",
              hw.llm.name.c_str(), hw.gpu.name.c_str());
  const double standard = cost.PrefillTime(20000, 0, PassStrategy::kStandard, 0);
  std::printf("  %10s %14s %10s\n", "chunk", "time", "overhead");
  std::printf("  %10s %12.2fs %10s\n", "none", standard, "-");
  for (int64_t chunk : {256, 512, 1024, 2048, 4096}) {
    const double chunked =
        cost.PrefillTime(20000, 0, PassStrategy::kChunkedPrefill, chunk);
    std::printf("  %10ld %12.2fs %9.1f%%\n", static_cast<long>(chunk), chunked,
                (chunked / standard - 1.0) * 100.0);
  }
  std::printf("  paper: -14%% throughput at chunk 512\n");

  std::printf("\n[B] naive KV dropping vs vanilla, max input length\n");
  MemoryModel mem(hw.llm, hw.gpu);
  const long paged = mem.MaxInputLength(EngineKind::kPagedAttention);
  const long naive = mem.MaxInputLength(EngineKind::kKvDropNaive);
  const long hybrid = mem.MaxInputLength(EngineKind::kPrefillOnly);
  std::printf("  vanilla (paged):     %8ld tokens\n", paged);
  std::printf("  naive KV drop:       %8ld tokens (%.1fx; paper: ~1.6x)\n", naive,
              static_cast<double>(naive) / paged);
  std::printf("  hybrid prefilling:   %8ld tokens (%.1fx)\n", hybrid,
              static_cast<double>(hybrid) / paged);
  std::printf(
      "  -> dropping KV alone is not enough: the linear-layer intermediates\n"
      "     dominate peak memory (Fig. 3/4); chunking them is what pays.\n");
  return 0;
}
