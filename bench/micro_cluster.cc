// Multi-replica serving microbenchmark (ISSUE 8).
//
// Two questions the ReplicaSet layer must answer with numbers:
//
//  1. SCALING — aggregate prefill throughput of a shared-prefix workload
//     behind the prefix-affinity router at N = {1, 2, 4} replicas. Affinity
//     keeps each prefix family on one replica, so per-replica cache hit
//     rates should survive the split (the router's reason to exist: naive
//     round-robin would dilute them N ways).
//  2. RECOVERY — kill one of three replicas (Trip(), the operator switch)
//     with a backlog queued on it, and measure makespan plus how many
//     queued requests transparently failed over. The bar: every request
//     completes, none execute twice, and the surviving replicas absorb the
//     work without operator involvement.
//
// Output: a human table plus BENCH_cluster.json in the style of
// BENCH_concurrent_serving.json. Same caveat as docs/PERFORMANCE.md: the
// dev container may expose few cores; replica-count speedups only show on
// real multi-core hosts, while the recovery numbers are meaningful anywhere.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/cluster/replica_set.h"
#include "src/common/rng.h"
#include "src/core/engine.h"
#include "src/core/request.h"

namespace {

using namespace prefillonly;

EngineOptions BenchEngineOptions() {
  EngineOptions options;
  options.model = ModelConfig::Tiny();
  options.block_size = 16;
  options.cache_budget_tokens = 1024;
  options.mode = PrefillMode::kChunked;
  options.chunk_size = 32;
  options.num_threads = 0;  // whole machine, shared by all replicas
  options.max_concurrent_requests = 2;
  return options;
}

// Shared-prefix workload: `families` distinct first blocks, each repeated
// so the prefix cache (and the affinity router) has something to share.
std::vector<ScoringRequest> BenchWorkload(int n_requests, int families,
                                          int64_t n_tokens) {
  std::vector<ScoringRequest> requests;
  Rng rng(7);
  std::vector<std::vector<int32_t>> prefixes;
  for (int f = 0; f < families; ++f) {
    std::vector<int32_t> prefix(16);
    for (auto& t : prefix) {
      t = static_cast<int32_t>(rng.NextBounded(256));
    }
    prefixes.push_back(std::move(prefix));
  }
  for (int i = 0; i < n_requests; ++i) {
    ScoringRequest request;
    request.user_id = i;
    request.tokens = prefixes[static_cast<size_t>(i % families)];
    while (request.tokens.size() < static_cast<size_t>(n_tokens)) {
      request.tokens.push_back(static_cast<int32_t>(rng.NextBounded(256)));
    }
    request.allowed_tokens = {10, 20};
    requests.push_back(std::move(request));
  }
  return requests;
}

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct ScalePoint {
  int n_replicas;
  int requests;
  double seconds;
  double prefills_per_s;
  double cache_hit_rate;
  int64_t routed_affinity;
  int64_t routed_spill;
};

ScalePoint RunScale(const std::vector<ScoringRequest>& workload, int n_replicas) {
  ReplicaSetOptions options;
  options.n_replicas = n_replicas;
  options.engine = BenchEngineOptions();
  options.health_poll_ms = 0;
  ReplicaSet set(options);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<Engine::ResponseFuture> futures;
  futures.reserve(workload.size());
  for (const auto& request : workload) {
    auto submitted = set.Submit(request);
    if (submitted.ok()) {
      futures.push_back(std::move(submitted.value().future));
    }
  }
  int completed = 0;
  for (auto& future : futures) {
    completed += future.get().ok() ? 1 : 0;
  }
  const double elapsed = Seconds(t0);
  const ClusterStats stats = set.Stats();
  ScalePoint p;
  p.n_replicas = n_replicas;
  p.requests = completed;
  p.seconds = elapsed;
  p.prefills_per_s = static_cast<double>(completed) / elapsed;
  p.cache_hit_rate = stats.totals.cache.HitRate();
  p.routed_affinity = stats.cluster.routed_affinity;
  p.routed_spill = stats.cluster.routed_spill;
  return p;
}

struct RecoveryPoint {
  int n_replicas;
  int requests;
  int completed;
  double seconds;
  int64_t failovers;
  int64_t cancelled_for_failover;
  bool recovered;  // every request reached a successful terminal result
};

// Queue the whole backlog on a 3-replica set (one lane each, so queues are
// real), then trip replica 0 immediately: everything queued there must
// move and finish elsewhere.
RecoveryPoint RunRecovery(const std::vector<ScoringRequest>& workload) {
  ReplicaSetOptions options;
  options.n_replicas = 3;
  options.engine = BenchEngineOptions();
  options.engine.max_concurrent_requests = 1;
  options.spill_margin = 1000;  // keep affinity absolute so queues build
  options.health_poll_ms = 0;
  ReplicaSet set(options);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<Engine::ResponseFuture> futures;
  futures.reserve(workload.size());
  for (const auto& request : workload) {
    auto submitted = set.Submit(request);
    if (submitted.ok()) {
      futures.push_back(std::move(submitted.value().future));
    }
  }
  (void)set.Trip(0, "bench: simulated replica kill");
  int completed = 0;
  for (auto& future : futures) {
    completed += future.get().ok() ? 1 : 0;
  }
  const double elapsed = Seconds(t0);
  const ClusterStats stats = set.Stats();
  RecoveryPoint p;
  p.n_replicas = 3;
  p.requests = static_cast<int>(futures.size());
  p.completed = completed;
  p.seconds = elapsed;
  p.failovers = stats.cluster.failovers;
  p.cancelled_for_failover = stats.totals.cancelled;
  p.recovered = completed == static_cast<int>(futures.size());
  return p;
}

}  // namespace

int main() {
  constexpr int kRequests = 32;
  constexpr int kFamilies = 8;
  constexpr int64_t kTokens = 96;
  const auto workload = BenchWorkload(kRequests, kFamilies, kTokens);

  std::printf("cluster serving: %d requests, %d prefix families x %lld tokens, "
              "%u hardware threads\n\n",
              kRequests, kFamilies, static_cast<long long>(kTokens),
              std::thread::hardware_concurrency());

  // Warm-up, then best-of-3 per replica count (same noise-taming protocol
  // as micro_concurrent_serving).
  constexpr int kReps = 3;
  (void)RunScale(workload, 1);
  auto best_of = [&](int n) {
    ScalePoint best = RunScale(workload, n);
    for (int r = 1; r < kReps; ++r) {
      ScalePoint p = RunScale(workload, n);
      if (p.seconds < best.seconds) {
        best = p;
      }
    }
    return best;
  };
  std::vector<ScalePoint> points;
  for (int n : {1, 2, 4}) {
    points.push_back(best_of(n));
  }

  std::printf("%-10s %10s %12s %16s %14s %10s %8s\n", "replicas", "requests",
              "seconds", "prefills/sec", "cache_hit", "affinity", "spill");
  for (const auto& p : points) {
    std::printf("%-10d %10d %12.4f %16.2f %14.3f %10lld %8lld\n", p.n_replicas,
                p.requests, p.seconds, p.prefills_per_s, p.cache_hit_rate,
                static_cast<long long>(p.routed_affinity),
                static_cast<long long>(p.routed_spill));
  }

  const RecoveryPoint recovery = RunRecovery(workload);
  std::printf("\nkill-one-replica recovery (3 replicas, one lane each, "
              "replica 0 tripped at t=0):\n");
  std::printf("  %d/%d requests completed in %.4f s; %lld queued requests "
              "failed over (%lld withdrawals); recovered: %s\n",
              recovery.completed, recovery.requests, recovery.seconds,
              static_cast<long long>(recovery.failovers),
              static_cast<long long>(recovery.cancelled_for_failover),
              recovery.recovered ? "yes" : "NO");

  FILE* f = std::fopen("BENCH_cluster.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_cluster.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"cluster_scaling\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    std::fprintf(f,
                 "    {\"n_replicas\": %d, \"requests\": %d, \"seconds\": %.6g, "
                 "\"prefills_per_s\": %.4f, \"cache_hit_rate\": %.4f, "
                 "\"routed_affinity\": %lld, \"routed_spill\": %lld}%s\n",
                 p.n_replicas, p.requests, p.seconds, p.prefills_per_s,
                 p.cache_hit_rate, static_cast<long long>(p.routed_affinity),
                 static_cast<long long>(p.routed_spill),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"failover_recovery\": {\n");
  std::fprintf(f,
               "    \"n_replicas\": %d, \"requests\": %d, \"completed\": %d, "
               "\"seconds\": %.6g, \"failovers\": %lld, \"recovered\": %s\n",
               recovery.n_replicas, recovery.requests, recovery.completed,
               recovery.seconds, static_cast<long long>(recovery.failovers),
               recovery.recovered ? "true" : "false");
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_cluster.json\n");
  return recovery.recovered ? 0 : 1;
}
