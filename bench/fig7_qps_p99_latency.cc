// Fig. 7: QPS vs P99 latency, same grid as Fig. 6. Shows that PrefillOnly's
// JCT-based scheduling does not hurt the tail once the starvation offset
// (lambda = 500) is applied.
#include "bench/bench_common.h"

int main() {
  using namespace prefillonly;
  using namespace prefillonly::bench;
  Header("Fig. 7 - QPS vs P99 latency (5 engines, 2 workloads, 4 setups)");

  const Dataset post_rec = MakePostRecommendationDataset({});
  const Dataset credit = MakeCreditVerificationDataset({});

  for (const Dataset* dataset : {&post_rec, &credit}) {
    for (const auto& hw : HardwareSetup::All()) {
      const auto grid = QpsGrid(hw, *dataset);
      const auto series = RunQpsSweep(hw, *dataset, grid);
      PrintLatencyPanel(dataset->name + " / " + hw.name, series, LatencyMetric::kP99);
    }
  }
  return 0;
}
