// Fig. 7: QPS vs P99 latency, same grid as Fig. 6. Shows that PrefillOnly's
// JCT-based scheduling does not hurt the tail once the starvation offset
// (lambda = 500) is applied.
//
// Output: the human panels plus BENCH_fig7.json. With --real (or
// PO_FIG_REAL=1) the real CPU engine's p99 curve from the open-loop loadgen
// runner (ISSUE 10) joins the same JSON under "real"; the simulator panels
// stay unchanged under "simulator".
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace prefillonly;
  using namespace prefillonly::bench;
  Header("Fig. 7 - QPS vs P99 latency (5 engines, 2 workloads, 4 setups)");

  const Dataset post_rec = MakePostRecommendationDataset({});
  const Dataset credit = MakeCreditVerificationDataset({});

  Json::Array sim_panels;
  for (const Dataset* dataset : {&post_rec, &credit}) {
    for (const auto& hw : HardwareSetup::All()) {
      const auto grid = QpsGrid(hw, *dataset);
      const auto series = RunQpsSweep(hw, *dataset, grid);
      PrintLatencyPanel(dataset->name + " / " + hw.name, series, LatencyMetric::kP99);
      sim_panels.push_back(SimPanelJson(*dataset, hw, series));
    }
  }

  Json::Object out;
  out.emplace("figure", "fig7_qps_p99_latency");
  out.emplace("metric", "p99");
  out.emplace("simulator", Json(std::move(sim_panels)));
  if (RealEngineRequested(argc, argv)) {
    Json::Array real;
    real.push_back(RealEngineSweepJson("post-rec", /*seed=*/1));
    real.push_back(RealEngineSweepJson("credit", /*seed=*/2));
    out.emplace("real", Json(std::move(real)));
  }

  FILE* f = std::fopen("BENCH_fig7.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_fig7.json\n");
    return 1;
  }
  std::fprintf(f, "%s\n", Json(std::move(out)).Serialize().c_str());
  std::fclose(f);
  return 0;
}
