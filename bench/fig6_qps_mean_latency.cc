// Fig. 6: QPS vs MEAN latency for 5 engines x 2 workloads x 4 hardware
// setups (8 panels). PrefillOnly should hold the lowest latency at high
// QPS everywhere; tensor parallelism may win at low QPS (2 GPUs per
// request), which is the paper's observed crossover.
//
// Output: the human panels plus BENCH_fig6.json. With --real (or
// PO_FIG_REAL=1) the repo's real CPU engine is ALSO swept through the
// open-loop loadgen runner (ISSUE 10) on the scaled Table-1 workloads, and
// that series lands in the same JSON under "real" — the simulator panels
// are preserved unchanged under "simulator".
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace prefillonly;
  using namespace prefillonly::bench;
  Header("Fig. 6 - QPS vs mean latency (5 engines, 2 workloads, 4 setups)");

  const Dataset post_rec = MakePostRecommendationDataset({});
  const Dataset credit = MakeCreditVerificationDataset({});

  Json::Array sim_panels;
  for (const Dataset* dataset : {&post_rec, &credit}) {
    for (const auto& hw : HardwareSetup::All()) {
      const auto grid = QpsGrid(hw, *dataset);
      const auto series = RunQpsSweep(hw, *dataset, grid);
      PrintLatencyPanel(dataset->name + " / " + hw.name, series,
                        LatencyMetric::kMean);
      sim_panels.push_back(SimPanelJson(*dataset, hw, series));
    }
  }

  Json::Object out;
  out.emplace("figure", "fig6_qps_mean_latency");
  out.emplace("metric", "mean");
  out.emplace("simulator", Json(std::move(sim_panels)));
  if (RealEngineRequested(argc, argv)) {
    Json::Array real;
    real.push_back(RealEngineSweepJson("post-rec", /*seed=*/1));
    real.push_back(RealEngineSweepJson("credit", /*seed=*/2));
    out.emplace("real", Json(std::move(real)));
  }

  FILE* f = std::fopen("BENCH_fig6.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_fig6.json\n");
    return 1;
  }
  std::fprintf(f, "%s\n", Json(std::move(out)).Serialize().c_str());
  std::fclose(f);
  return 0;
}
