// Fig. 6: QPS vs MEAN latency for 5 engines x 2 workloads x 4 hardware
// setups (8 panels). PrefillOnly should hold the lowest latency at high
// QPS everywhere; tensor parallelism may win at low QPS (2 GPUs per
// request), which is the paper's observed crossover.
#include "bench/bench_common.h"

int main() {
  using namespace prefillonly;
  using namespace prefillonly::bench;
  Header("Fig. 6 - QPS vs mean latency (5 engines, 2 workloads, 4 setups)");

  const Dataset post_rec = MakePostRecommendationDataset({});
  const Dataset credit = MakeCreditVerificationDataset({});

  for (const Dataset* dataset : {&post_rec, &credit}) {
    for (const auto& hw : HardwareSetup::All()) {
      const auto grid = QpsGrid(hw, *dataset);
      const auto series = RunQpsSweep(hw, *dataset, grid);
      PrintLatencyPanel(dataset->name + " / " + hw.name, series,
                        LatencyMetric::kMean);
    }
  }
  return 0;
}
