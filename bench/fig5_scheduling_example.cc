// Fig. 5: the A/B/C/D scheduling walkthrough.
//
// Four requests with length A < C < B < D; A and D share a prefix, B and C
// share a prefix; the cache holds one request's KV. Replays all three
// policies and prints the schedule plus cache hits, reproducing the figure:
// FIFO and plain SRJF get 1 hit, SRJF with continuous JCT calibration gets 2.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/sched/scheduler.h"

namespace {

using namespace prefillonly;

struct Request {
  const char* name;
  int64_t length;
  int group;  // 0 = {A, D}, 1 = {B, C}
};

void Replay(SchedPolicy policy) {
  const Request requests[] = {
      {"A", 300, 0}, {"B", 380, 1}, {"C", 350, 1}, {"D", 400, 0}};
  CacheMissProxyEstimator proxy;
  Scheduler sched(policy, 0.0, &proxy);

  std::printf("\n%s:\n  schedule: ", std::string(SchedPolicyName(policy)).c_str());
  std::vector<int> remaining{0, 1, 2, 3};
  int cached_group = -1;
  int64_t cached_len = 0;
  int hits = 0;
  double now = 0;
  while (!remaining.empty()) {
    std::vector<SchedEntry> queue;
    for (int idx : remaining) {
      const auto& r = requests[idx];
      SchedEntry e;
      e.arrival_time = 0.0;
      e.n_input = r.length;
      e.n_cached_at_arrival = 0;
      const int64_t hit =
          (r.group == cached_group) ? std::min(cached_len, r.length - 1) : 0;
      e.n_cached_now =
          policy == SchedPolicy::kSrjfCalibrated ? hit : e.n_cached_at_arrival;
      queue.push_back(e);
    }
    const size_t pick = sched.PickNext(queue, now);
    const int idx = remaining[pick];
    const auto& r = requests[idx];
    const bool hit = r.group == cached_group && cached_len > 0;
    hits += hit ? 1 : 0;
    std::printf("%s%s ", r.name, hit ? "(hit)" : "");
    cached_group = r.group;
    cached_len = r.length;
    now += 1.0;
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  std::printf("\n  cache hits: %d\n", hits);
}

}  // namespace

int main() {
  using namespace prefillonly;
  bench::Header("Fig. 5 - FIFO vs SRJF vs SRJF + continuous JCT calibration");
  std::printf(
      "\nsetup: A(300) B(380) C(350) D(400) arrive together; A,D share a\n"
      "prefix, B,C share a prefix; cache holds one request's KV.\n");
  Replay(SchedPolicy::kFifo);
  Replay(SchedPolicy::kSjfStatic);
  Replay(SchedPolicy::kSrjfCalibrated);
  std::printf(
      "\npaper: FIFO=1 hit, SRJF=1 hit, SRJF+calibration=2 hits (schedules A,\n"
      "then D because its JCT collapsed, then C, then B).\n");
  return 0;
}
