// Fig. 9: achieved request throughput vs offered QPS on the post-
// recommendation workload, 2x H100 without NVLink.
//
// The mechanism on display: under high QPS, user bursts overlap; FIFO
// baselines interleave users, so one user's profile KV gets evicted before
// its remaining posts run ("prefix cache throttling") and chunked prefill's
// throughput collapses. PrefillOnly's continuous JCT calibration keeps
// draining the cache-hit requests first and sustains throughput. TP/PP
// spread the cache over both GPUs and avoid throttling, but pay
// communication overhead.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace prefillonly;
  using namespace prefillonly::bench;
  Header("Fig. 9 - throughput vs offered QPS (post recommendation, 2x H100)");

  const auto hw = HardwareSetup::H100_Llama70B();
  const Dataset dataset = MakePostRecommendationDataset({});
  const double x = MeasureSaturatedThroughput(
      EngineConfig::Make(EngineKind::kPrefillOnly, hw), dataset);

  const EngineKind kinds[] = {EngineKind::kPrefillOnly, EngineKind::kChunkedPrefill,
                              EngineKind::kPipelineParallel,
                              EngineKind::kTensorParallel};
  std::printf("\n%12s", "offered QPS");
  for (EngineKind kind : kinds) {
    std::printf("  %18s", std::string(EngineKindName(kind)).c_str());
  }
  std::printf("\n%12s", "");
  for (size_t i = 0; i < std::size(kinds); ++i) {
    std::printf("  %18s", "tput / hit-rate");
  }
  std::printf("\n");

  for (double factor : {0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0}) {
    const double qps = x * factor;
    std::printf("%12.2f", qps);
    for (EngineKind kind : kinds) {
      const auto result = RunCluster(EngineConfig::Make(kind, hw),
                                     WithArrivals(dataset, qps, 99));
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%.2f / %.0f%%", result.throughput_rps,
                    result.cache_hit_rate * 100.0);
      std::printf("  %18s", cell);
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper: chunked prefill's throughput sags at high QPS (prefix cache\n"
      "throttling -> hit rate drops); PrefillOnly keeps both high.\n");
  return 0;
}
