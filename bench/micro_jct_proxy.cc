// §6.3 micro-claim: the number of cache-miss tokens (n_input - n_cached) is
// an excellent JCT proxy — the paper measures Pearson r = 0.987 against
// real JCTs on an A100 with Qwen-32B (fp8).
//
// Reproduced two ways:
//  [A] against the cost model with multiplicative measurement noise, over
//      the credit-verification length range;
//  [B] against REAL timed prefills of the scaled CPU model.
// Also compares the proxy with the profiled linear-regression estimator.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/rng.h"
#include "src/gpu/cost_model.h"
#include "src/metrics/stats.h"
#include "src/model/llama.h"
#include "src/sched/jct.h"

int main() {
  using namespace prefillonly;
  bench::Header("Micro (6.3) - JCT vs cache-miss-token proxy");

  {
    const auto hw = HardwareSetup::A100_Qwen32B();
    CostModel cost(hw.llm, hw.gpu);
    Rng rng(77);
    std::vector<double> jct;
    std::vector<double> miss;
    for (int64_t n_input = 1000; n_input <= 60000; n_input += 1000) {
      for (int64_t n_cached = 0; n_cached < n_input; n_cached += 4000) {
        const double noise = 1.0 + 0.03 * rng.NextGaussian();
        jct.push_back(
            cost.PrefillTime(n_input - n_cached, n_cached, PassStrategy::kHybrid, 2048) *
            noise);
        miss.push_back(static_cast<double>(n_input - n_cached));
      }
    }
    const double r = PearsonCorrelation(miss, jct);
    std::printf("\n[A] modeled %s on %s, %zu (n_input, n_cached) pairs\n",
                hw.llm.name.c_str(), hw.gpu.name.c_str(), jct.size());
    std::printf("    Pearson(miss tokens, JCT) = %.3f   (paper: 0.987)\n", r);

    auto profiled = ProfiledJctEstimator::Profile(
        [&](int64_t n_input, int64_t n_cached) {
          return cost.PrefillTime(n_input - n_cached, n_cached, PassStrategy::kHybrid,
                                  2048);
        },
        60000, 1000);
    if (profiled.ok()) {
      std::printf("    profiled linear model R^2 = %.4f\n",
                  profiled.value().r_squared());
    }
  }

  {
    LlamaModel model(ModelConfig::Small(), 3);
    TrackingAllocator act;
    Rng rng(78);
    std::vector<double> jct;
    std::vector<double> miss;
    for (int64_t n = 64; n <= 512; n += 64) {
      std::vector<int32_t> tokens(static_cast<size_t>(n));
      for (auto& t : tokens) {
        t = static_cast<int32_t>(
            rng.NextBounded(static_cast<uint64_t>(model.config().vocab_size)));
      }
      PrefillOptions options;
      options.mode = PrefillMode::kHybrid;
      options.chunk_size = 64;
      const auto t0 = std::chrono::steady_clock::now();
      auto result = model.Prefill(tokens, nullptr, options, act);
      const auto t1 = std::chrono::steady_clock::now();
      if (result.ok()) {
        jct.push_back(std::chrono::duration<double>(t1 - t0).count());
        miss.push_back(static_cast<double>(n));
      }
    }
    std::printf("\n[B] measured on the real CPU model (%zu lengths)\n", jct.size());
    std::printf("    Pearson(miss tokens, wall-clock JCT) = %.3f\n",
                PearsonCorrelation(miss, jct));
  }
  return 0;
}
