// Concurrent serving microbenchmark (ISSUE 2).
//
// Measures aggregate prefill throughput of the real engine under the
// concurrent runtime at in-flight limits {1, 2, 4}, against the legacy
// serial frontend (Submit + RunPending) on the same workload. The elastic
// worker partitions mean the in-flight = 1 configuration borrows the whole
// pool per kernel, so the concurrent path must not be slower than the
// serial worker there — the acceptance bar of ISSUE 2, and the number this
// bench makes diffable run over run.
//
// Output: a human table plus BENCH_concurrent_serving.json in the style of
// BENCH_kernels.json. Note the dev container may expose a single core; the
// in-flight > 1 speedups only show on real multi-core hosts (the same
// caveat as docs/PERFORMANCE.md).
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/core/engine.h"
#include "src/core/request.h"

namespace {

using namespace prefillonly;

EngineOptions BenchOptions() {
  EngineOptions options;
  options.model = ModelConfig::Tiny();
  options.block_size = 16;
  options.cache_budget_tokens = 1024;
  options.chunk_size = 32;
  options.num_threads = 0;  // whole machine
  return options;
}

std::vector<ScoringRequest> BenchWorkload(int n_requests, int64_t n_tokens) {
  std::vector<ScoringRequest> requests;
  Rng rng(7);
  for (int i = 0; i < n_requests; ++i) {
    ScoringRequest request;
    request.user_id = i;
    request.tokens.resize(static_cast<size_t>(n_tokens));
    for (auto& t : request.tokens) {
      t = static_cast<int32_t>(rng.NextBounded(256));
    }
    request.allowed_tokens = {10, 20};
    requests.push_back(std::move(request));
  }
  return requests;
}

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct Point {
  std::string frontend;
  int in_flight;
  int requests;
  double seconds;
  double prefills_per_s;
};

// Serial frontend: the whole backlog through Submit + RunPending.
Point RunSerial(const std::vector<ScoringRequest>& workload) {
  Engine engine(BenchOptions());
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& request : workload) {
    auto id = engine.Submit(request);
    (void)id;
  }
  auto responses = engine.RunPending();
  const double elapsed = Seconds(t0);
  Point p;
  p.frontend = "serial_run_pending";
  p.in_flight = 1;
  p.requests = static_cast<int>(responses.value().size());
  p.seconds = elapsed;
  p.prefills_per_s = static_cast<double>(p.requests) / elapsed;
  return p;
}

// Concurrent runtime at a given in-flight limit: submit everything, wait on
// the futures.
Point RunConcurrent(const std::vector<ScoringRequest>& workload, int in_flight) {
  EngineOptions options = BenchOptions();
  options.max_concurrent_requests = in_flight;
  Engine engine(options);
  Status started = engine.StartWorker(nullptr);
  (void)started;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<Engine::ResponseFuture> futures;
  futures.reserve(workload.size());
  for (const auto& request : workload) {
    auto submitted = engine.SubmitAsync(request);
    if (submitted.ok()) {
      futures.push_back(submitted.take());
    }
  }
  int completed = 0;
  for (auto& future : futures) {
    completed += future.get().ok() ? 1 : 0;
  }
  const double elapsed = Seconds(t0);
  engine.StopWorker();
  Point p;
  p.frontend = "concurrent_runtime";
  p.in_flight = in_flight;
  p.requests = completed;
  p.seconds = elapsed;
  p.prefills_per_s = static_cast<double>(completed) / elapsed;
  return p;
}

}  // namespace

int main() {
  constexpr int kRequests = 24;
  constexpr int64_t kTokens = 96;
  const auto workload = BenchWorkload(kRequests, kTokens);

  std::printf("concurrent serving: %d requests x %lld tokens, %u hardware threads\n\n",
              kRequests, static_cast<long long>(kTokens),
              std::thread::hardware_concurrency());

  std::vector<Point> points;
  // Warm-up pass so first-touch costs (rope table, pool spin-up) are off the
  // clock for every configuration equally; then best-of-3 per configuration
  // to tame scheduler noise on small containers.
  constexpr int kReps = 3;
  (void)RunSerial(workload);
  auto best_of = [](auto run) {
    Point best = run();
    for (int r = 1; r < kReps; ++r) {
      Point p = run();
      if (p.seconds < best.seconds) {
        best = p;
      }
    }
    return best;
  };
  points.push_back(best_of([&] { return RunSerial(workload); }));
  for (int in_flight : {1, 2, 4}) {
    points.push_back(best_of([&] { return RunConcurrent(workload, in_flight); }));
  }

  std::printf("%-22s %10s %10s %12s %16s\n", "frontend", "in_flight", "requests",
              "seconds", "prefills/sec");
  for (const auto& p : points) {
    std::printf("%-22s %10d %10d %12.4f %16.2f\n", p.frontend.c_str(), p.in_flight,
                p.requests, p.seconds, p.prefills_per_s);
  }
  const double serial = points[0].prefills_per_s;
  const double concurrent1 = points[1].prefills_per_s;
  std::printf("\nconcurrent@1 / serial throughput ratio: %.3f "
              "(ISSUE 2 bar: >= ~1.0 modulo noise)\n",
              concurrent1 / serial);

  FILE* f = std::fopen("BENCH_concurrent_serving.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_concurrent_serving.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"concurrent_serving\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    std::fprintf(f,
                 "    {\"frontend\": \"%s\", \"in_flight\": %d, \"requests\": %d, "
                 "\"seconds\": %.6g, \"prefills_per_s\": %.4f}%s\n",
                 p.frontend.c_str(), p.in_flight, p.requests, p.seconds,
                 p.prefills_per_s, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_concurrent_serving.json\n");
  return 0;
}
