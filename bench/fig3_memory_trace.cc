// Fig. 3: memory trace of a long prefill, with and without hybrid
// prefilling.
//
// Two parts:
//  (a) MEASURED on the real CPU engine: a scaled Llama-style model prefills
//      1024 tokens while the TrackingAllocator records every allocation;
//      the printed trace shows the periodic MLP intermediate-tensor spikes
//      (standard) vs. the flat profile (hybrid), like Fig. 3a/3b.
//  (b) MODELED at paper scale: peak bytes for Llama-3.1-8B prefilling
//      32,768 tokens (the paper's ~2 GB peak reduction).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/rng.h"
#include "src/gpu/activation_model.h"
#include "src/model/llama.h"

namespace {

using namespace prefillonly;

// Renders an allocation timeline as a fixed-width ASCII strip chart.
void PrintTrace(const std::vector<TrackingAllocator::Event>& timeline,
                size_t peak_bytes) {
  constexpr int kColumns = 64;
  constexpr int kHeight = 8;
  if (timeline.empty()) {
    return;
  }
  // Downsample current_bytes over event index.
  std::vector<double> series(kColumns, 0.0);
  for (int c = 0; c < kColumns; ++c) {
    const size_t idx = timeline.size() * static_cast<size_t>(c) / kColumns;
    series[static_cast<size_t>(c)] = static_cast<double>(timeline[idx].current_bytes);
  }
  for (int row = kHeight; row >= 1; --row) {
    const double threshold = static_cast<double>(peak_bytes) * row / kHeight;
    std::printf("  %5.1fMB |", threshold / 1e6);
    for (int c = 0; c < kColumns; ++c) {
      std::printf("%c", series[static_cast<size_t>(c)] >= threshold ? '#' : ' ');
    }
    std::printf("|\n");
  }
  std::printf("          +%s+ (allocation-event time ->)\n",
              std::string(kColumns, '-').c_str());
}

size_t MeasuredTrace(const LlamaModel& model, PrefillMode mode, const char* label) {
  Rng rng(5);
  std::vector<int32_t> tokens(1024);
  for (auto& t : tokens) {
    t = static_cast<int32_t>(rng.NextBounded(
        static_cast<uint64_t>(model.config().vocab_size)));
  }
  TrackingAllocator alloc;
  alloc.EnableTimeline(true);
  PrefillOptions options;
  options.mode = mode;
  options.chunk_size = 64;
  auto result = model.Prefill(tokens, nullptr, options, alloc);
  if (!result.ok()) {
    std::printf("prefill failed: %s\n", result.status().ToString().c_str());
    return 0;
  }
  std::printf("\n(%s) peak %.1f MB over %zu allocation events\n", label,
              static_cast<double>(alloc.peak_bytes()) / 1e6, alloc.timeline().size());
  PrintTrace(alloc.timeline(), alloc.peak_bytes());
  return alloc.peak_bytes();
}

}  // namespace

int main() {
  using namespace prefillonly;
  bench::Header("Fig. 3 - GPU memory trace with/without hybrid prefilling");

  std::printf("\n[A] MEASURED: scaled Llama (6 layers, hidden 256), 1024 tokens\n");
  LlamaModel model(ModelConfig::Medium(), 42);
  const size_t standard = MeasuredTrace(model, PrefillMode::kStandard,
                                        "standard prefill - Fig. 3a");
  const size_t hybrid = MeasuredTrace(model, PrefillMode::kHybrid,
                                      "hybrid prefill - Fig. 3b");
  if (hybrid > 0) {
    std::printf("\npeak reduction: %.1f%%  (spikes are the MLP intermediates)\n",
                100.0 * (1.0 - static_cast<double>(hybrid) / standard));
  }

  std::printf("\n[B] MODELED: Llama-3.1-8B, 32,768 tokens (paper: ~2 GB saved)\n");
  const LlmSpec spec = LlmSpec::Llama31_8B();
  ActivationShape shape;
  shape.n_layers = spec.n_layers;
  shape.hidden = spec.hidden;
  shape.q_size = spec.q_size();
  shape.kv_width = spec.kv_width();
  shape.intermediate = spec.intermediate;
  shape.act_bytes = spec.act_bytes;
  shape.kv_bytes = spec.kv_bytes;
  PassOptions std_pass;
  std_pass.strategy = PassStrategy::kStandard;
  PassOptions hyb_pass;
  hyb_pass.strategy = PassStrategy::kHybrid;
  hyb_pass.chunk = 2048;
  const auto peak_std = SimulatePassMemory(shape, 32768, 0, std_pass);
  const auto peak_hyb = SimulatePassMemory(shape, 32768, 0, hyb_pass);
  // The paper's Fig. 3 traces the PyTorch allocator only: vLLM's KV pool is
  // preallocated and invisible there, so the comparable number is the
  // activation peak with resident KV excluded.
  const double std_act =
      static_cast<double>(peak_std.peak_bytes - peak_std.resident_kv_bytes);
  const double hyb_act =
      static_cast<double>(peak_hyb.peak_bytes - peak_hyb.resident_kv_bytes);
  std::printf("  standard prefill: %.2f GB activations (+%.2f GB KV held all-layer)\n",
              std_act / 1e9, static_cast<double>(peak_std.resident_kv_bytes) / 1e9);
  std::printf("  hybrid prefill:   %.2f GB activations (+%.2f GB KV, one layer)\n",
              hyb_act / 1e9, static_cast<double>(peak_hyb.resident_kv_bytes) / 1e9);
  std::printf("  activation peak reduction: %.2f GB   (paper Fig. 3: ~2 GB)\n",
              (std_act - hyb_act) / 1e9);
  std::printf("  total in-pass reduction:   %.2f GB   (incl. discarded KV)\n",
              static_cast<double>(peak_std.peak_bytes - peak_hyb.peak_bytes) / 1e9);
  return 0;
}
