// Continuous batching microbenchmark (ISSUE 4): the REAL engine's batched
// prefill path, throughput vs batch size vs prompt length, per kernel
// backend.
//
// Context: the paper (§6.1) argues GPU prefill is compute-bound, so fusing
// requests into one long prefill only inflates latency — and PrefillOnly
// schedules one request at a time. That argument prices FLOPs, not kernel
// launch efficiency. At SHORT prompt lengths a prefill's GEMMs run at tiny
// m, where the weight-panel sweep (memory traffic per output row) and
// per-pass overheads dominate; stacking B compatible prompts into one pass
// (Prepacking, Zhao et al. 2024) re-amortizes both without changing any
// request's logits (the ISSUE 4 determinism contract). This bench measures
// exactly that effect end to end: same backlog, same engine, max_batch_size
// swept over {1, 2, 4, 8}.
//
// Output: a human table plus BENCH_batching.json (reference copy checked
// into the repo root). Acceptance bar (ISSUE 4): batched throughput at
// batch size 4 on short prompts >= solo.
//
// ISSUE 9 adds a mixed-length scenario: lengths cycling across several
// power-of-two LengthBuckets, drained once under the legacy bucket rule and
// once under budget-aware first-fit packing, same max_batch_size. The
// packing metric is lane occupancy in the currency that costs money —
// miss tokens per dispatched batch — and the run FAILS (exit 1) if packing
// admits fewer miss-tokens per batch than the bucket rule on this workload.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/core/engine.h"
#include "src/core/request.h"
#include "src/tensor/ops_dispatch.h"

namespace {

using namespace prefillonly;

EngineOptions BenchOptions(KernelBackend backend, int max_batch) {
  EngineOptions options;
  options.model = ModelConfig::Tiny();
  options.kernel_backend = backend;
  options.block_size = 16;
  options.cache_budget_tokens = 1024;
  options.chunk_size = 32;
  options.num_threads = 0;  // whole machine
  options.max_batch_size = max_batch;
  return options;
}

std::vector<ScoringRequest> BenchWorkload(int n_requests, int64_t n_tokens) {
  // Distinct random prompts of ONE length: no prefix-cache hits, and every
  // request lands in the same LengthBucket, so formation is limited only by
  // max_batch_size.
  std::vector<ScoringRequest> requests;
  Rng rng(7);
  for (int i = 0; i < n_requests; ++i) {
    ScoringRequest request;
    request.user_id = i;
    request.tokens.resize(static_cast<size_t>(n_tokens));
    for (auto& t : request.tokens) {
      t = static_cast<int32_t>(rng.NextBounded(256));
    }
    request.allowed_tokens = {10, 20};
    requests.push_back(std::move(request));
  }
  return requests;
}

struct Point {
  std::string backend;
  int64_t prompt_len = 0;
  int max_batch = 0;
  int requests = 0;
  double seconds = 0.0;
  double prefills_per_s = 0.0;
  double occupancy = 0.0;
};

// Drains the whole backlog through RunPending (deterministic batch
// formation: every decision sees the full remaining queue).
Point RunOnce(KernelBackend backend, const std::vector<ScoringRequest>& workload,
              int max_batch) {
  Engine engine(BenchOptions(backend, max_batch));
  for (const auto& request : workload) {
    auto id = engine.Submit(request);
    (void)id;
  }
  const auto t0 = std::chrono::steady_clock::now();
  auto responses = engine.RunPending();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  if (!responses.ok()) {
    std::fprintf(stderr, "RunPending failed: %s\n",
                 responses.status().ToString().c_str());
    std::exit(1);
  }
  const EngineStats stats = engine.stats();
  Point p;
  p.backend = KernelBackendName(engine.model().kernel_backend());
  p.prompt_len = static_cast<int64_t>(workload[0].tokens.size());
  p.max_batch = max_batch;
  p.requests = static_cast<int>(responses.value().size());
  p.seconds = elapsed;
  p.prefills_per_s = static_cast<double>(p.requests) / elapsed;
  p.occupancy = stats.batches_dispatched > 0
                    ? static_cast<double>(stats.batched_requests) /
                          static_cast<double>(stats.batches_dispatched)
                    : 0.0;
  return p;
}

// ---------------------------------------- mixed-length packing (ISSUE 9)

std::vector<ScoringRequest> MixedWorkload(int n_requests) {
  // Lengths cycling across six DISTINCT LengthBuckets (1..6), so each
  // bracket holds fewer requests than max_batch: under the legacy bucket
  // rule a drain decision can only fill from the seed's bracket and strands
  // every lane part-empty; first-fit packing welds the brackets into full
  // lanes.
  const int64_t kLengths[] = {2, 5, 9, 17, 33, 65};
  std::vector<ScoringRequest> requests;
  Rng rng(11);
  for (int i = 0; i < n_requests; ++i) {
    ScoringRequest request;
    request.user_id = i;
    request.tokens.resize(static_cast<size_t>(kLengths[i % 6]));
    for (auto& t : request.tokens) {
      t = static_cast<int32_t>(rng.NextBounded(256));
    }
    request.allowed_tokens = {10, 20};
    requests.push_back(std::move(request));
  }
  return requests;
}

struct MixedPoint {
  std::string backend;
  std::string packing;
  int max_batch = 0;
  double seconds = 0.0;
  double prefills_per_s = 0.0;
  double occupancy = 0.0;            // requests per dispatched batch
  double miss_tokens_per_batch = 0.0;  // lane occupancy in miss tokens
  int64_t batches = 0;
};

MixedPoint RunMixedOnce(KernelBackend backend,
                        const std::vector<ScoringRequest>& workload,
                        BatchPacking packing, int max_batch) {
  EngineOptions options = BenchOptions(backend, max_batch);
  options.batch_packing = packing;
  Engine engine(options);
  for (const auto& request : workload) {
    auto id = engine.Submit(request);
    (void)id;
  }
  const auto t0 = std::chrono::steady_clock::now();
  auto responses = engine.RunPending();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  if (!responses.ok()) {
    std::fprintf(stderr, "RunPending failed: %s\n",
                 responses.status().ToString().c_str());
    std::exit(1);
  }
  const EngineStats stats = engine.stats();
  MixedPoint p;
  p.backend = KernelBackendName(engine.model().kernel_backend());
  p.packing = BatchPackingName(packing);
  p.max_batch = max_batch;
  p.seconds = elapsed;
  p.prefills_per_s = static_cast<double>(responses.value().size()) / elapsed;
  p.batches = stats.batches_dispatched;
  p.occupancy = stats.batches_dispatched > 0
                    ? static_cast<double>(stats.batched_requests) /
                          static_cast<double>(stats.batches_dispatched)
                    : 0.0;
  p.miss_tokens_per_batch =
      stats.batches_dispatched > 0
          ? static_cast<double>(stats.batched_miss_tokens) /
                static_cast<double>(stats.batches_dispatched)
          : 0.0;
  return p;
}

MixedPoint RunMixedBest(KernelBackend backend,
                        const std::vector<ScoringRequest>& workload,
                        BatchPacking packing, int max_batch, int reps) {
  MixedPoint best = RunMixedOnce(backend, workload, packing, max_batch);
  for (int r = 1; r < reps; ++r) {
    MixedPoint p = RunMixedOnce(backend, workload, packing, max_batch);
    if (p.seconds < best.seconds) {
      best = p;
    }
  }
  return best;
}

}  // namespace

int main() {
  constexpr int kRequests = 32;
  constexpr int kReps = 5;
  const int64_t kPromptLens[] = {8, 16, 64};
  const int kBatchSizes[] = {1, 2, 4, 8};

  std::vector<KernelBackend> backends{KernelBackend::kScalar};
  if (Avx2Available()) {
    backends.push_back(KernelBackend::kAvx2);
  }

  std::printf("continuous batching: %d requests per cell, %u hardware threads\n\n",
              kRequests, std::thread::hardware_concurrency());
  std::printf("%-8s %10s %10s %10s %12s %16s %10s\n", "backend", "prompt", "batch",
              "requests", "seconds", "prefills/sec", "occupancy");

  std::vector<Point> points;
  for (KernelBackend backend : backends) {
    for (int64_t prompt_len : kPromptLens) {
      const auto workload = BenchWorkload(kRequests, prompt_len);
      // Warm-up run: each RunOnce builds a fresh engine, so this only
      // pre-faults code/malloc pages — enough to keep first-measured-cell
      // jitter out of the best-of-N below.
      (void)RunOnce(backend, workload, 1);
      for (int max_batch : kBatchSizes) {
        Point best = RunOnce(backend, workload, max_batch);
        for (int r = 1; r < kReps; ++r) {
          Point p = RunOnce(backend, workload, max_batch);
          if (p.seconds < best.seconds) {
            best = p;
          }
        }
        std::printf("%-8s %10lld %10d %10d %12.4f %16.2f %10.2f\n",
                    best.backend.c_str(), static_cast<long long>(best.prompt_len),
                    best.max_batch, best.requests, best.seconds, best.prefills_per_s,
                    best.occupancy);
        points.push_back(best);
      }
    }
  }

  // The acceptance bar: batch 4 vs solo on the short prompt, per backend.
  std::printf("\n");
  for (KernelBackend backend : backends) {
    const char* name = KernelBackendName(backend);
    double solo = 0.0;
    double batch4 = 0.0;
    for (const Point& p : points) {
      if (p.backend == name && p.prompt_len == kPromptLens[0]) {
        if (p.max_batch == 1) solo = p.prefills_per_s;
        if (p.max_batch == 4) batch4 = p.prefills_per_s;
      }
    }
    std::printf("%s: batch4/solo throughput at %lld tokens = %.3f "
                "(ISSUE 4 bar: >= ~1.0)\n",
                name, static_cast<long long>(kPromptLens[0]),
                solo > 0 ? batch4 / solo : 0.0);
  }
  std::printf("(single-core container numbers; the real scaling curve is pending a "
              "multi-core host, see ROADMAP.md)\n");

  // Mixed-length scenario (ISSUE 9): packed vs bucket admission on the same
  // cross-bucket backlog, same max_batch_size.
  constexpr int kMixedBatch = 8;
  std::printf("\nmixed-length packing: lengths {2,5,9,17,33,65} cycling, "
              "max_batch %d\n", kMixedBatch);
  std::printf("%-8s %10s %10s %12s %16s %10s %18s\n", "backend", "packing",
              "batches", "seconds", "prefills/sec", "occupancy",
              "miss_tok/batch");
  std::vector<MixedPoint> mixed;
  bool gate_ok = true;
  for (KernelBackend backend : backends) {
    const auto workload = MixedWorkload(kRequests);
    (void)RunMixedOnce(backend, workload, BatchPacking::kBucket, kMixedBatch);
    MixedPoint bucket = RunMixedBest(backend, workload, BatchPacking::kBucket,
                                     kMixedBatch, kReps);
    MixedPoint packed = RunMixedBest(backend, workload, BatchPacking::kFirstFit,
                                     kMixedBatch, kReps);
    for (const MixedPoint* p : {&bucket, &packed}) {
      std::printf("%-8s %10s %10lld %12.4f %16.2f %10.2f %18.2f\n",
                  p->backend.c_str(), p->packing.c_str(),
                  static_cast<long long>(p->batches), p->seconds,
                  p->prefills_per_s, p->occupancy, p->miss_tokens_per_batch);
      mixed.push_back(*p);
    }
    std::printf("%s: packed/bucket miss-tokens-per-batch = %.3f, "
                "packed/bucket throughput = %.3f (ISSUE 9 gate: occupancy >= 1.0)\n",
                bucket.backend.c_str(),
                bucket.miss_tokens_per_batch > 0
                    ? packed.miss_tokens_per_batch / bucket.miss_tokens_per_batch
                    : 0.0,
                bucket.prefills_per_s > 0
                    ? packed.prefills_per_s / bucket.prefills_per_s
                    : 0.0);
    if (packed.miss_tokens_per_batch < bucket.miss_tokens_per_batch) {
      std::fprintf(stderr,
                   "GATE FAILED (%s): first-fit packing admits fewer miss "
                   "tokens per batch (%.2f) than the bucket rule (%.2f) on "
                   "the mixed workload\n",
                   bucket.backend.c_str(), packed.miss_tokens_per_batch,
                   bucket.miss_tokens_per_batch);
      gate_ok = false;
    }
  }

  FILE* f = std::fopen("BENCH_batching.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_batching.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"batching\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    std::fprintf(f,
                 "    {\"backend\": \"%s\", \"prompt_len\": %lld, \"max_batch\": %d, "
                 "\"requests\": %d, \"seconds\": %.6g, \"prefills_per_s\": %.4f, "
                 "\"occupancy\": %.4f}%s\n",
                 p.backend.c_str(), static_cast<long long>(p.prompt_len), p.max_batch,
                 p.requests, p.seconds, p.prefills_per_s, p.occupancy,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"mixed_length\": [\n");
  for (size_t i = 0; i < mixed.size(); ++i) {
    const auto& p = mixed[i];
    std::fprintf(f,
                 "    {\"backend\": \"%s\", \"packing\": \"%s\", \"max_batch\": %d, "
                 "\"batches\": %lld, \"seconds\": %.6g, \"prefills_per_s\": %.4f, "
                 "\"occupancy\": %.4f, \"miss_tokens_per_batch\": %.4f}%s\n",
                 p.backend.c_str(), p.packing.c_str(), p.max_batch,
                 static_cast<long long>(p.batches), p.seconds, p.prefills_per_s,
                 p.occupancy, p.miss_tokens_per_batch,
                 i + 1 < mixed.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_batching.json\n");
  return gate_ok ? 0 : 1;
}
