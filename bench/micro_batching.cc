// §6.1 design choice: why PrefillOnly does NOT batch prefill-only requests.
//
// Decoding is memory-bound: batching B sequences costs barely more than one
// (the weight sweep dominates), so continuous batching multiplies decode
// throughput. Prefill is compute-bound: a batch of B requests costs ~B
// times one request, so batching only inflates average latency (everyone
// waits for the batch) without adding throughput.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/gpu/cost_model.h"

int main() {
  using namespace prefillonly;
  bench::Header("Micro (6.1) - why not batch prefill-only requests");

  CostModel cost(LlmSpec::Llama33_70B_Fp8(), GpuSpec::H100_80G());

  std::printf("\n[A] decode step (memory-bound): batching is ~free\n");
  std::printf("  %8s %14s %22s\n", "batch", "step time", "per-sequence cost");
  const double step1 = cost.DecodeStepTime(1);
  for (int batch : {1, 8, 64, 256}) {
    const double step = cost.DecodeStepTime(batch);
    std::printf("  %8d %12.2fms %20.3fms (%.0f%% of solo)\n", batch, step * 1e3,
                step / batch * 1e3, step / batch / step1 * 100.0);
  }

  std::printf("\n[B] prefill of 14,000 tokens (compute-bound): batching is ~linear\n");
  const double solo = cost.PrefillTime(14000, 0, PassStrategy::kHybrid, 2048);
  std::printf("  %8s %14s %22s %16s\n", "batch", "batch time", "mean latency in batch",
              "throughput");
  for (int batch : {1, 2, 4, 8}) {
    // A fused batch is one long prefill; every request waits for the whole
    // batch to finish.
    const double batch_time =
        cost.PrefillTime(static_cast<int64_t>(14000) * batch, 0, PassStrategy::kHybrid,
                         2048);
    std::printf("  %8d %12.2fs %20.2fs %13.3f req/s\n", batch, batch_time, batch_time,
                batch / batch_time);
  }
  std::printf("  serial (PrefillOnly): mean latency (B+1)/2 x %.2fs, same %.3f req/s\n",
              solo, 1.0 / solo);
  std::printf(
      "\n-> batching prefill-only requests raises everyone's latency to the\n"
      "   batch completion time without improving throughput; PrefillOnly\n"
      "   schedules one request at a time (paper 6.1).\n");
  return 0;
}
