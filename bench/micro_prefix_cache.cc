// Shared-prefix caching microbenchmark (ISSUE 7): the radix-tree prefix
// cache vs the seed's flat hash-map policy, on workloads whose requests
// share block-aligned prefixes — the dominant shape of prefill-only
// traffic (§2.1: system prompts, few-shot templates, user profiles).
//
// The baseline below reimplements the policy this repo shipped before the
// tree: one flat map keyed by chain hash, global per-block LRU, and a
// full-table victim scan per eviction. Its two pathologies are exactly
// what the workloads here provoke:
//
//  * a hot shared prefix whose stamp is older than its suffixes gets
//    evicted from underneath them, and
//  * evicting a prefix hash strands every deeper hash of that sequence —
//    still resident, never matchable again (Match walks from block 0).
//
// The tree makes both impossible (leaf-only eviction), so at equal
// capacity it converts the same block budget into strictly more reusable
// prefix tokens. Output: a human table plus BENCH_prefix_cache.json
// (reference copy checked into the repo root). Acceptance bar (ISSUE 7):
// tree hit-rate >= flat hit-rate on every shared-prefix cell.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/kvcache/prefix_cache.h"

namespace {

using namespace prefillonly;

constexpr int kBlockSize = 16;

// ------------------------------------------------------------ workloads

struct Request {
  std::vector<int32_t> tokens;
};

std::vector<int32_t> RandomTokens(Rng& rng, int64_t n) {
  std::vector<int32_t> out(static_cast<size_t>(n));
  for (auto& t : out) {
    t = static_cast<int32_t>(rng.NextBounded(50'000));
  }
  return out;
}

// One long system prompt shared by everyone, unique user suffixes.
std::vector<Request> SystemPromptWorkload(int n_requests) {
  Rng rng(101);
  const auto system = RandomTokens(rng, 256);
  std::vector<Request> requests;
  for (int i = 0; i < n_requests; ++i) {
    Request r;
    r.tokens = system;
    const auto suffix = RandomTokens(rng, 64);
    r.tokens.insert(r.tokens.end(), suffix.begin(), suffix.end());
    requests.push_back(std::move(r));
  }
  return requests;
}

// Each request instantiates one of a handful of few-shot templates.
std::vector<Request> FewShotWorkload(int n_requests) {
  Rng rng(202);
  std::vector<std::vector<int32_t>> templates;
  for (int t = 0; t < 8; ++t) {
    templates.push_back(RandomTokens(rng, 128));
  }
  std::vector<Request> requests;
  for (int i = 0; i < n_requests; ++i) {
    Request r;
    r.tokens = templates[rng.NextBounded(templates.size())];
    const auto suffix = RandomTokens(rng, 32);
    r.tokens.insert(r.tokens.end(), suffix.begin(), suffix.end());
    requests.push_back(std::move(r));
  }
  return requests;
}

// Hierarchical sharing: tenant prompt -> per-tenant template -> unique
// tail. Exercises nested splits (a path three nodes deep per request).
std::vector<Request> MultiTenantWorkload(int n_requests) {
  Rng rng(303);
  constexpr int kTenants = 4;
  constexpr int kTemplates = 6;
  std::vector<std::vector<int32_t>> tenant_prompts;
  std::vector<std::vector<std::vector<int32_t>>> tenant_templates(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    tenant_prompts.push_back(RandomTokens(rng, 128));
    for (int k = 0; k < kTemplates; ++k) {
      tenant_templates[t].push_back(RandomTokens(rng, 64));
    }
  }
  std::vector<Request> requests;
  for (int i = 0; i < n_requests; ++i) {
    const auto tenant = rng.NextBounded(kTenants);
    Request r;
    r.tokens = tenant_prompts[tenant];
    const auto& tpl = tenant_templates[tenant][rng.NextBounded(kTemplates)];
    r.tokens.insert(r.tokens.end(), tpl.begin(), tpl.end());
    const auto suffix = RandomTokens(rng, 32);
    r.tokens.insert(r.tokens.end(), suffix.begin(), suffix.end());
    requests.push_back(std::move(r));
  }
  return requests;
}

// ------------------------------------------------- flat-map baseline

// The pre-tree policy, reimplemented verbatim in miniature: flat map from
// chain hash to a cached block, stamped per block, full-table LRU scan per
// evicted block, matched blocks of the live request pinned by hash.
class FlatBaseline {
 public:
  explicit FlatBaseline(int64_t capacity_blocks) : capacity_(capacity_blocks) {}

  // Sequential request lifecycle: match, evict to fit, insert all blocks.
  void Run(const std::vector<uint64_t>& chain, int64_t lookup_tokens) {
    lookup_tokens_ += lookup_tokens;
    int64_t matched = 0;
    while (matched < static_cast<int64_t>(chain.size()) &&
           entries_.contains(chain[static_cast<size_t>(matched)])) {
      ++matched;
    }
    hit_tokens_ += std::min(matched * kBlockSize, lookup_tokens);

    const int64_t fresh = static_cast<int64_t>(chain.size()) - matched;
    while (static_cast<int64_t>(entries_.size()) + fresh > capacity_) {
      // Global per-block LRU victim, found by scanning the whole table —
      // the O(n^2) seed behavior. Matched blocks of the live request are
      // pinned; everything else (including now-unreachable orphans of past
      // evictions) is fair game.
      uint64_t victim = 0;
      uint64_t victim_stamp = UINT64_MAX;
      bool found = false;
      for (const auto& [hash, stamp] : entries_) {
        ++scan_steps_;
        const bool pinned =
            std::find(chain.begin(), chain.begin() + matched, hash) !=
            chain.begin() + matched;
        if (!pinned && stamp < victim_stamp) {
          victim = hash;
          victim_stamp = stamp;
          found = true;
        }
      }
      if (!found) {
        return;  // everything pinned; request simply does not fit
      }
      entries_.erase(victim);
      ++evictions_;
    }
    for (const auto hash : chain) {
      entries_[hash] = ++clock_;  // touch matched, insert fresh
    }
  }

  double HitRate() const {
    return lookup_tokens_ == 0
               ? 0.0
               : static_cast<double>(hit_tokens_) / static_cast<double>(lookup_tokens_);
  }
  int64_t evictions() const { return evictions_; }
  int64_t scan_steps() const { return scan_steps_; }

 private:
  int64_t capacity_;
  std::unordered_map<uint64_t, uint64_t> entries_;  // hash -> last-use stamp
  uint64_t clock_ = 0;
  int64_t hit_tokens_ = 0;
  int64_t lookup_tokens_ = 0;
  int64_t evictions_ = 0;
  int64_t scan_steps_ = 0;  // entries examined across all victim scans
};

// ----------------------------------------------------------- measurement

struct Cell {
  std::string scenario;
  int64_t capacity_blocks = 0;
  double tree_hit_rate = 0.0;
  double flat_hit_rate = 0.0;
  int64_t tree_evictions = 0;
  int64_t flat_evictions = 0;
  int64_t flat_scan_steps = 0;  // tree victim selection is O(1) at the LRU head
};

Cell RunCell(const std::string& scenario, const std::vector<Request>& requests,
             int64_t capacity_blocks) {
  PrefixCache tree(kBlockSize, capacity_blocks);
  FlatBaseline flat(capacity_blocks);
  for (const auto& request : requests) {
    const auto chain = BlockHashChain(request.tokens, kBlockSize);
    const auto n_tokens = static_cast<int64_t>(request.tokens.size());
    auto acq = tree.Acquire(chain, static_cast<int64_t>(chain.size()), n_tokens);
    if (acq.ok()) {
      tree.Release(acq.value(), static_cast<int64_t>(chain.size()));
    }
    flat.Run(chain, n_tokens);
  }
  Cell cell;
  cell.scenario = scenario;
  cell.capacity_blocks = capacity_blocks;
  cell.tree_hit_rate = tree.stats().HitRate();
  cell.flat_hit_rate = flat.HitRate();
  cell.tree_evictions = tree.stats().evictions;
  cell.flat_evictions = flat.evictions();
  cell.flat_scan_steps = flat.scan_steps();
  return cell;
}

}  // namespace

int main() {
  constexpr int kRequests = 400;
  const int64_t kCapacities[] = {32, 64, 128, 256};

  struct Scenario {
    std::string name;
    std::vector<Request> requests;
  };
  const Scenario scenarios[] = {
      {"system_prompt", SystemPromptWorkload(kRequests)},
      {"few_shot", FewShotWorkload(kRequests)},
      {"multi_tenant", MultiTenantWorkload(kRequests)},
  };

  std::printf("shared-prefix caching: radix tree vs flat-map baseline, "
              "%d requests per cell, block size %d\n\n",
              kRequests, kBlockSize);
  std::printf("%-14s %10s %12s %12s %10s %10s %14s\n", "scenario", "capacity",
              "tree_hit", "flat_hit", "tree_evic", "flat_evic", "flat_scan");

  std::vector<Cell> cells;
  // The bar is per scenario, aggregated over the capacity sweep: single-cell
  // comparisons can flip by a fraction of a percent on eviction-granularity
  // tie-breaks (the tree trims node tails, the flat map picks single blocks),
  // but over the sweep the tree must never lose and must win under pressure.
  bool bar_met = true;
  bool strictly_better = false;
  for (const auto& scenario : scenarios) {
    double tree_sum = 0.0;
    double flat_sum = 0.0;
    for (const int64_t capacity : kCapacities) {
      const Cell cell = RunCell(scenario.name, scenario.requests, capacity);
      std::printf("%-14s %10lld %12.4f %12.4f %10lld %10lld %14lld\n",
                  cell.scenario.c_str(), static_cast<long long>(cell.capacity_blocks),
                  cell.tree_hit_rate, cell.flat_hit_rate,
                  static_cast<long long>(cell.tree_evictions),
                  static_cast<long long>(cell.flat_evictions),
                  static_cast<long long>(cell.flat_scan_steps));
      tree_sum += cell.tree_hit_rate;
      flat_sum += cell.flat_hit_rate;
      cells.push_back(cell);
    }
    const double n = static_cast<double>(std::size(kCapacities));
    std::printf("%-14s %10s %12.4f %12.4f   (sweep mean)\n\n",
                scenario.name.c_str(), "mean", tree_sum / n, flat_sum / n);
    bar_met = bar_met && tree_sum >= flat_sum - 1e-9;
    strictly_better = strictly_better || tree_sum > flat_sum + 1e-4;
  }
  bar_met = bar_met && strictly_better;

  std::printf("tree hit-rate >= flat on every scenario sweep, and strictly "
              "higher under pressure: %s (ISSUE 7 acceptance bar)\n",
              bar_met ? "yes" : "NO");
  std::printf("(flat_scan = entries examined by the baseline's per-eviction "
              "full-table victim scan; the tree pops its LRU list head in O(1))\n");

  FILE* f = std::fopen("BENCH_prefix_cache.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_prefix_cache.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"prefix_cache\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const auto& c = cells[i];
    std::fprintf(f,
                 "    {\"scenario\": \"%s\", \"capacity_blocks\": %lld, "
                 "\"tree_hit_rate\": %.4f, \"flat_hit_rate\": %.4f, "
                 "\"tree_evictions\": %lld, \"flat_evictions\": %lld, "
                 "\"flat_scan_steps\": %lld}%s\n",
                 c.scenario.c_str(), static_cast<long long>(c.capacity_blocks),
                 c.tree_hit_rate, c.flat_hit_rate,
                 static_cast<long long>(c.tree_evictions),
                 static_cast<long long>(c.flat_evictions),
                 static_cast<long long>(c.flat_scan_steps),
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"bar_met\": %s\n}\n", bar_met ? "true" : "false");
  std::fclose(f);
  std::printf("wrote BENCH_prefix_cache.json\n");
  return bar_met ? 0 : 1;
}
