// Table 2: maximum input length (MIL) per engine per hardware setup, with
// the workload feasibility ticks (WL1 = post recommendation needs ~17k
// tokens, WL2 = credit verification needs ~60k tokens).
//
// Paper reference values (tokens):
//              L4        A100      H100
//   Paged      24,000    11,000    15,000
//   Chunked    46,000    17,000    25,000
//   Pipeline   72,000    38,000    183,000
//   Tensor     195,000   77,000    238,000
//   PrefillOnly 130,000  87,000    97,000
#include <cstdio>

#include "bench/bench_common.h"
#include "src/gpu/memory_model.h"

int main() {
  using namespace prefillonly;
  bench::Header("Table 2 - max input length per engine (modeled)");

  const int64_t wl1_needed = 17'150;  // longest post-recommendation request
  const int64_t wl2_needed = 60'000;  // longest credit-verification request

  const HardwareSetup setups[] = {HardwareSetup::L4_Llama8B(),
                                  HardwareSetup::A100_Qwen32B(),
                                  HardwareSetup::H100_Llama70B()};
  const EngineKind kinds[] = {
      EngineKind::kPagedAttention, EngineKind::kChunkedPrefill,
      EngineKind::kPipelineParallel, EngineKind::kTensorParallel,
      EngineKind::kPrefillOnly,
  };

  std::printf("%-18s", "Config");
  for (const auto& hw : setups) {
    std::printf("  %22s", hw.name.c_str());
  }
  std::printf("\n");
  for (EngineKind kind : kinds) {
    std::printf("%-18s", std::string(EngineKindName(kind)).c_str());
    for (const auto& hw : setups) {
      MemoryModel mem(hw.llm, hw.gpu);
      const int64_t mil = mem.MaxInputLength(kind);
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%ld  WL1:%s WL2:%s", static_cast<long>(mil),
                    mil >= wl1_needed ? "Y" : "x", mil >= wl2_needed ? "Y" : "x");
      std::printf("  %22s", cell);
    }
    std::printf("\n");
  }
  std::printf(
      "\nModel per GPU (setups): %s / %s / %s\n"
      "Headline check: PrefillOnly MIL vs best non-parallel baseline:\n",
      setups[0].llm.name.c_str(), setups[1].llm.name.c_str(),
      setups[2].llm.name.c_str());
  for (const auto& hw : setups) {
    MemoryModel mem(hw.llm, hw.gpu);
    const double ratio =
        static_cast<double>(mem.MaxInputLength(EngineKind::kPrefillOnly)) /
        static_cast<double>(mem.MaxInputLength(EngineKind::kChunkedPrefill));
    std::printf("  %-16s %.1fx over chunked prefill (paper: ~3-5x)\n",
                hw.name.c_str(), ratio);
  }
  return 0;
}
