// Fig. 4: tensor sizes inside the MLP module of Llama-3.1-8B.
//
// Paper: for a 32,768-token prefill, intermediate 1 (the fused gate_up
// output) is [32768 x 28672] - 28672 floats per token, 14x the one-layer KV
// cache; intermediate 2 (after SwiGLU) is [32768 x 14336], 7x.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/gpu/specs.h"

int main() {
  using namespace prefillonly;
  bench::Header("Fig. 4 - MLP intermediate tensor sizes (Llama-3.1-8B)");

  const LlmSpec spec = LlmSpec::Llama31_8B();
  const int64_t tokens = 32768;
  const int64_t one_layer_kv_floats = 2 * spec.kv_width();

  struct Row {
    const char* name;
    int64_t cols;
  } rows[] = {
      {"Input (hidden)", spec.hidden},
      {"Intermediate 1 (gate_up out)", 2 * spec.intermediate},
      {"Intermediate 2 (after SwiGLU)", spec.intermediate},
      {"Output (hidden)", spec.hidden},
      {"One-layer KV cache (K+V)", one_layer_kv_floats},
  };

  std::printf("%-32s %14s %12s %18s\n", "Tensor", "shape", "MB (bf16)",
              "x one-layer KV");
  for (const auto& row : rows) {
    const double mb = static_cast<double>(tokens) * row.cols * 2.0 / 1e6;
    std::printf("%-32s %7ld x %-5ld %11.1f %17.1fx\n", row.name,
                static_cast<long>(tokens), static_cast<long>(row.cols), mb,
                static_cast<double>(row.cols) / one_layer_kv_floats);
  }
  std::printf(
      "\npaper check: intermediate 1 = %ld floats/token (14x one-layer KV), "
      "intermediate 2 = %ld (7x)\n",
      static_cast<long>(2 * spec.intermediate), static_cast<long>(spec.intermediate));
  return 0;
}
