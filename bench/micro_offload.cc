// §9 extension: offloading KV to CPU memory instead of discarding it.
//
// The paper's PrefillOnly discards suffix KV; §9 notes it could be
// offloaded to host memory (LMCache-style) and reloaded later. This bench
// quantifies that extension on the simulator: the credit-verification
// workload is replayed TWICE per user (e.g. a re-scoring pass after a
// model-input update) on 2x H100. Without offload the second pass
// recomputes 40k-60k tokens per request; with offload it reloads them over
// PCIe.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace prefillonly;
  using namespace prefillonly::bench;
  Header("Extension (9) - suffix KV offloading to CPU memory");

  const auto hw = HardwareSetup::H100_Llama70B();
  CreditVerificationConfig config;
  config.n_users = 30;
  Dataset base = MakeCreditVerificationDataset(config);
  // Each customer is re-scored shortly after the first pass (fresh data
  // arrived, the decision is re-checked): original and repeat interleave.
  Dataset doubled = base;
  doubled.requests.clear();
  for (const auto& r : base.requests) {
    doubled.requests.push_back(r);
    SimRequest copy = r;
    copy.id += 1000;
    doubled.requests.push_back(std::move(copy));
  }
  AssignPoissonArrivals(doubled, /*qps=*/0.15, /*seed=*/5);

  std::printf("\nLlama-70B KV is ~0.32 MB/token: one 50k-token credit history\n"
              "is ~16 GB of KV - far beyond the GPU pool, cheap in host DRAM.\n");
  std::printf("\n%14s %12s %12s %14s %16s\n", "offload (GB)", "mean lat.",
              "P99 lat.", "hit rate", "offload tokens");
  for (double gb : {0.0, 16.0, 64.0, 256.0}) {
    EngineConfig engine = EngineConfig::Make(EngineKind::kPrefillOnly, hw);
    engine.offload_bytes = gb * 1e9;
    const auto result = RunCluster(engine, doubled);
    std::printf("%14.0f %11.1fs %11.1fs %13.0f%% %16ld\n", gb,
                result.mean_latency_s, result.p99_latency_s,
                result.cache_hit_rate * 100.0,
                static_cast<long>(result.offload_hit_tokens));
  }
  std::printf(
      "\n-> with enough host memory the repeat pass reloads instead of\n"
      "   recomputing: latency drops and the effective hit rate approaches\n"
      "   50%% (every second request is fully cached).\n");
  return 0;
}
