// Fig. 8: saturated request throughput on the credit-verification workload,
// 2x H100, with and without NVLink, for PrefillOnly vs the parallelization
// baselines. NVLink boosts tensor parallelism (faster all-reduce) but
// PrefillOnly still wins: it spends no GPU time on communication at all.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace prefillonly;
  using namespace prefillonly::bench;
  Header("Fig. 8 - credit-verification throughput, 2x H100, +/- NVLink");

  const Dataset credit = MakeCreditVerificationDataset({});
  const EngineKind kinds[] = {EngineKind::kPrefillOnly,
                              EngineKind::kPipelineParallel,
                              EngineKind::kTensorParallel};

  for (const auto& hw :
       {HardwareSetup::H100_Llama70B(), HardwareSetup::H100_NvLink_Llama70B()}) {
    std::printf("\n--- %s (req/s, all requests at t=0) ---\n", hw.name.c_str());
    for (EngineKind kind : kinds) {
      const double tput =
          MeasureSaturatedThroughput(EngineConfig::Make(kind, hw), credit);
      std::printf("  %-18s %.4f req/s  |%s\n",
                  std::string(EngineKindName(kind)).c_str(), tput,
                  std::string(static_cast<size_t>(tput * 300), '#').c_str());
    }
  }
  std::printf(
      "\npaper: PrefillOnly ~0.15 req/s and highest in both panels; NVLink\n"
      "lifts tensor parallel but not above PrefillOnly.\n");
  return 0;
}
